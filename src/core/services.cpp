#include "core/services.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/eth_types.hpp"
#include "core/labels.hpp"
#include "core/load_labels.hpp"
#include "util/strings.hpp"

namespace ss::core {

using graph::NodeId;
using graph::PortNo;

namespace {

CompilerOptions make_opts(ServiceKind kind) {
  CompilerOptions o;
  o.kind = kind;
  return o;
}

/// Controller messages appended since index `from`.
std::vector<const sim::ControllerMsg*> new_msgs(sim::Network& net, std::size_t from) {
  std::vector<const sim::ControllerMsg*> out;
  for (std::size_t k = from; k < net.controller_msgs().size(); ++k)
    out.push_back(&net.controller_msgs()[k]);
  return out;
}

/// A service report, whichever channel carried it.
struct Report {
  NodeId from = 0;
  std::uint32_t reason = 0;
  const ofp::Packet* packet = nullptr;
};

/// Collect reports since the given marks: controller packet-ins, plus —
/// in in-band mode — kEthReport deliveries at the collector's LOCAL port.
std::vector<Report> collect_reports(sim::Network& net, const TagLayout& L,
                                    std::size_t ctrl_mark, std::size_t local_mark,
                                    std::optional<NodeId> collector) {
  std::vector<Report> out;
  for (std::size_t k = ctrl_mark; k < net.controller_msgs().size(); ++k) {
    const auto& m = net.controller_msgs()[k];
    out.push_back({m.from, m.reason, &m.packet});
  }
  if (collector) {
    for (std::size_t k = local_mark; k < net.local_deliveries().size(); ++k) {
      const auto& d = net.local_deliveries()[k];
      if (d.at != *collector || d.packet.eth_type != kEthReport) continue;
      const auto reporter = static_cast<NodeId>(L.get(d.packet, L.reporter()));
      if (reporter == 0) continue;
      out.push_back({reporter - 1,
                     static_cast<std::uint32_t>(L.get(d.packet, L.reason())),
                     &d.packet});
    }
  }
  return out;
}

/// The watchdog/retry loop shared by every hardened driver.  One object per
/// run, stack-allocated: inject attempt 0, arm a watchdog callback inside
/// the live event loop; each firing without a verdict bumps the accepted
/// epoch (the compiled guard rules then eat the lost attempt's stragglers)
/// and re-injects.  All attempts execute inside ONE net.run() drain, so
/// scheduled churn keeps unfolding across retries — the regime
/// run_with_retries cannot reach.
class HardenedDriver {
 public:
  HardenedDriver(sim::Network& net, const TagLayout& L, NodeId root,
                 const RetryPolicy& policy, std::function<void(ofp::Packet&)> decorate,
                 std::function<bool(std::uint32_t)> verdict_seen)
      : net_(net),
        L_(L),
        root_(root),
        policy_(policy),
        decorate_(std::move(decorate)),
        verdict_seen_(std::move(verdict_seen)) {}

  void run() {
    inject();
    net_.run();
  }

  std::uint32_t attempts() const { return attempts_; }
  std::uint32_t epoch() const { return epoch_; }

 private:
  void inject() {
    ++attempts_;
    ofp::Packet pkt = L_.make_packet(kEthTraversal);
    if (decorate_) decorate_(pkt);
    L_.set(pkt, L_.epoch(), epoch_);
    net_.packet_out(root_, std::move(pkt));
    arm();
  }

  void arm() {
    net_.schedule_callback(net_.now() + policy_.timeout, [this](sim::Network&) {
      if (verdict_seen_(epoch_) || attempts_ >= policy_.max_attempts) return;
      epoch_ = (epoch_ + 1) % kEpochSpace;
      set_current_epoch(net_, epoch_);
      inject();
    });
  }

  sim::Network& net_;
  const TagLayout& L_;
  NodeId root_;
  RetryPolicy policy_;
  std::function<void(ofp::Packet&)> decorate_;
  std::function<bool(std::uint32_t)> verdict_seen_;
  std::uint32_t attempts_ = 0;
  std::uint32_t epoch_ = 0;
};

void require_epoch_guard(const TemplateCompiler& compiler) {
  if (!compiler.options().epoch_guard)
    throw std::logic_error(
        "run_hardened requires a service constructed with epoch_guard = true");
}

/// Type the retry loop's ending: success, a verdict stranded on an epoch the
/// watchdog had already abandoned (timeout too tight), or plain exhaustion.
/// Attempt a carries epoch a % kEpochSpace, so the abandoned epochs are
/// exactly 0 .. attempts-2.
template <typename SeenFn>
HardenedOutcome classify_outcome(const HardenedDriver& drv, SeenFn&& seen) {
  if (seen(drv.epoch())) return HardenedOutcome::kVerdict;
  for (std::uint32_t a = 0; a + 1 < drv.attempts(); ++a)
    if (seen(a % kEpochSpace)) return HardenedOutcome::kStaleVerdict;
  return HardenedOutcome::kExhausted;
}

}  // namespace

const char* hardened_outcome_name(HardenedOutcome o) {
  switch (o) {
    case HardenedOutcome::kVerdict: return "verdict";
    case HardenedOutcome::kStaleVerdict: return "stale-verdict";
    case HardenedOutcome::kExhausted: return "exhausted";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// PlainTraversal
// ---------------------------------------------------------------------------
PlainTraversal::PlainTraversal(const graph::Graph& g, bool finish_report,
                               bool use_fast_failover, bool epoch_guard,
                               bool header_guard, PipelineExtras extras)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kPlain);
        o.finish_report = finish_report;
        o.use_fast_failover = use_fast_failover;
        o.epoch_guard = epoch_guard;
        o.header_guard = header_guard;
        o.probe_sink = extras.probe_sink;
        o.data_forwarding = extras.data_forwarding;
        return o;
      }()) {}

bool PlainTraversal::run(sim::Network& net, NodeId root, RunStats* stats) const {
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  net.packet_out(root, layout_.make_packet(kEthTraversal));
  net.run();
  if (stats) *stats = scope.delta();
  for (const auto* m : new_msgs(net, mark))
    if (m->reason == kReasonFinish) return true;
  return false;
}

bool PlainTraversal::run_hardened(sim::Network& net, NodeId root,
                                  const RetryPolicy& policy, HardenedStats* hardened,
                                  RunStats* stats) const {
  require_epoch_guard(compiler_);
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  auto finish_seen = [&](std::uint32_t epoch) {
    for (const auto* m : new_msgs(net, mark))
      if (m->reason == kReasonFinish &&
          layout_.get(m->packet, layout_.epoch()) == epoch)
        return true;
    return false;
  };
  HardenedDriver drv(net, layout_, root, policy, nullptr, finish_seen);
  drv.run();
  if (stats) *stats = scope.delta();
  if (hardened)
    *hardened = {drv.attempts(), drv.epoch(), classify_outcome(drv, finish_seen)};
  return finish_seen(drv.epoch());
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------
SnapshotService::SnapshotService(const graph::Graph& g, std::uint32_t fragment_limit,
                                 bool dedup, std::optional<NodeId> inband_collector,
                                 bool epoch_guard, bool header_guard,
                                 PipelineExtras extras)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kSnapshot);
        o.fragment_limit = fragment_limit;
        o.snapshot_dedup = dedup;
        o.inband_collector = inband_collector;
        o.epoch_guard = epoch_guard;
        o.header_guard = header_guard;
        o.probe_sink = extras.probe_sink;
        o.data_forwarding = extras.data_forwarding;
        return o;
      }()) {}

SnapshotResult SnapshotService::run_with_retries(sim::Network& net, NodeId root,
                                                 std::uint32_t max_attempts,
                                                 std::uint32_t* attempts) const {
  SnapshotResult last;
  for (std::uint32_t a = 1; a <= max_attempts; ++a) {
    last = run(net, root);
    if (attempts) *attempts = a;
    if (last.complete) return last;
  }
  return last;
}

SnapshotResult SnapshotService::decode(const std::vector<std::uint32_t>& labels) {
  SnapshotResult res;
  std::vector<NodeId> stack;
  PortNo pending = graph::kNoPort;  // port 0 never appears in OUT records
  for (std::uint32_t lbl : labels) {
    const Record r = decode_record(lbl);
    switch (r.type) {
      case RecType::kVisit:
        res.nodes.insert(r.node);
        if (!stack.empty()) {
          if (pending == graph::kNoPort)
            throw std::runtime_error("snapshot decode: VISIT without OUT");
          res.edges.push_back({{stack.back(), pending}, {r.node, r.port}});
          pending = graph::kNoPort;
        }
        stack.push_back(r.node);
        break;
      case RecType::kOut:
        pending = r.port;
        break;
      case RecType::kBounce:
        res.nodes.insert(r.node);
        if (stack.empty() || pending == graph::kNoPort)
          throw std::runtime_error("snapshot decode: BOUNCE without OUT");
        res.edges.push_back({{stack.back(), pending}, {r.node, r.port}});
        pending = graph::kNoPort;
        break;
      case RecType::kRet:
        if (stack.empty()) throw std::runtime_error("snapshot decode: RET underflow");
        stack.pop_back();
        pending = graph::kNoPort;
        break;
    }
  }
  return res;
}

SnapshotResult SnapshotService::run(sim::Network& net, NodeId root) const {
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();
  net.packet_out(root, layout_.make_packet(kEthTraversal));
  net.run();

  // Concatenate fragments in arrival order, then the final packet's records.
  std::vector<std::uint32_t> labels;
  bool complete = false;
  std::size_t fragments = 0;
  for (const Report& m : collect_reports(net, layout_, mark, lmark,
                                         compiler_.options().inband_collector)) {
    if (m.reason == kReasonSnapshotFragment || m.reason == kReasonFinish) {
      labels.insert(labels.end(), m.packet->labels.begin(), m.packet->labels.end());
      ++fragments;
      if (m.reason == kReasonFinish) complete = true;
    }
  }
  SnapshotResult res = decode(labels);
  res.complete = complete;
  res.fragments = fragments;
  res.stats = scope.delta();
  return res;
}

SnapshotResult SnapshotService::run_hardened(sim::Network& net, NodeId root,
                                             const RetryPolicy& policy,
                                             HardenedStats* hardened) const {
  require_epoch_guard(compiler_);
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();
  const auto collector = compiler_.options().inband_collector;
  auto reports_of = [&](std::uint32_t epoch) {
    std::vector<Report> out;
    for (const Report& m :
         collect_reports(net, layout_, mark, lmark, collector)) {
      if (layout_.get(*m.packet, layout_.epoch()) == epoch) out.push_back(m);
    }
    return out;
  };
  auto finish_seen = [&](std::uint32_t epoch) {
    for (const Report& m : reports_of(epoch))
      if (m.reason == kReasonFinish) return true;
    return false;
  };
  HardenedDriver drv(net, layout_, root, policy, nullptr, finish_seen);
  drv.run();

  // Decode only the accepted epoch's fragments: records flushed by an
  // abandoned attempt would otherwise corrupt the stack decoding.
  std::vector<std::uint32_t> labels;
  bool complete = false;
  std::size_t fragments = 0;
  for (const Report& m : reports_of(drv.epoch())) {
    if (m.reason == kReasonSnapshotFragment || m.reason == kReasonFinish) {
      labels.insert(labels.end(), m.packet->labels.begin(), m.packet->labels.end());
      ++fragments;
      if (m.reason == kReasonFinish) complete = true;
    }
  }
  SnapshotResult res = decode(labels);
  res.complete = complete;
  res.fragments = fragments;
  res.stats = scope.delta();
  if (hardened)
    *hardened = {drv.attempts(), drv.epoch(), classify_outcome(drv, finish_seen)};
  return res;
}

std::string SnapshotResult::canonical() const {
  std::vector<std::string> lines;
  lines.reserve(edges.size());
  for (const SnapshotEdge& e : edges) {
    graph::Endpoint lo = e.a, hi = e.b;
    if (hi.node < lo.node) std::swap(lo, hi);
    lines.push_back(util::cat(lo.node, ":", lo.port, "-", hi.node, ":", hi.port));
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  return util::join(lines, "\n");
}

// ---------------------------------------------------------------------------
// Anycast
// ---------------------------------------------------------------------------
AnycastService::AnycastService(const graph::Graph& g, std::vector<AnycastGroupSpec> groups,
                               bool epoch_guard, bool header_guard,
                               PipelineExtras extras)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kAnycast);
        o.groups = std::move(groups);
        o.epoch_guard = epoch_guard;
        o.header_guard = header_guard;
        o.probe_sink = extras.probe_sink;
        o.data_forwarding = extras.data_forwarding;
        return o;
      }()) {}

AnycastResult AnycastService::run(sim::Network& net, NodeId from, std::uint32_t gid) const {
  StatsScope scope(net);
  const std::size_t mark = net.local_deliveries().size();
  ofp::Packet pkt = layout_.make_packet(kEthTraversal);
  layout_.set(pkt, layout_.gid(), gid);
  pkt.payload_bytes = 64;  // the anycast message's own data
  net.packet_out(from, std::move(pkt));
  net.run();
  AnycastResult res;
  if (net.local_deliveries().size() > mark)
    res.delivered_at = net.local_deliveries()[mark].at;
  res.stats = scope.delta();
  return res;
}

AnycastResult AnycastService::run_hardened(sim::Network& net, NodeId from,
                                           std::uint32_t gid, const RetryPolicy& policy,
                                           HardenedStats* hardened) const {
  require_epoch_guard(compiler_);
  StatsScope scope(net);
  const std::size_t mark = net.local_deliveries().size();
  auto delivery_of = [&](std::uint32_t epoch) -> const sim::LocalDelivery* {
    for (std::size_t k = mark; k < net.local_deliveries().size(); ++k) {
      const auto& d = net.local_deliveries()[k];
      if (d.packet.eth_type == kEthTraversal &&
          layout_.get(d.packet, layout_.epoch()) == epoch)
        return &d;
    }
    return nullptr;
  };
  auto decorate = [&](ofp::Packet& pkt) {
    layout_.set(pkt, layout_.gid(), gid);
    pkt.payload_bytes = 64;
  };
  auto delivery_seen = [&](std::uint32_t e) { return delivery_of(e) != nullptr; };
  HardenedDriver drv(net, layout_, from, policy, decorate, delivery_seen);
  drv.run();
  AnycastResult res;
  if (const sim::LocalDelivery* d = delivery_of(drv.epoch()))
    res.delivered_at = d->at;
  res.stats = scope.delta();
  if (hardened)
    *hardened = {drv.attempts(), drv.epoch(), classify_outcome(drv, delivery_seen)};
  return res;
}

// ---------------------------------------------------------------------------
// Chained anycast
// ---------------------------------------------------------------------------
ChainedAnycastService::ChainedAnycastService(const graph::Graph& g,
                                             std::vector<AnycastGroupSpec> groups)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kChainedAnycast);
        o.groups = std::move(groups);
        return o;
      }()) {}

ChainResult ChainedAnycastService::run(sim::Network& net, NodeId from,
                                       const std::vector<std::uint32_t>& chain) const {
  if (chain.empty() || chain.size() > kChainSlots)
    throw std::invalid_argument("chain length must be 1..kChainSlots");
  StatsScope scope(net);
  const std::size_t mark = net.local_deliveries().size();
  ofp::Packet pkt = layout_.make_packet(kEthTraversal);
  for (std::size_t k = 0; k < chain.size(); ++k)
    layout_.set(pkt, layout_.chain_slot(static_cast<std::uint32_t>(k)), chain[k]);
  pkt.payload_bytes = 64;
  net.packet_out(from, std::move(pkt));
  net.run();
  ChainResult res;
  for (std::size_t k = mark; k < net.local_deliveries().size(); ++k)
    res.hops.push_back(net.local_deliveries()[k].at);
  res.completed = res.hops.size() == chain.size();
  res.stats = scope.delta();
  return res;
}

// ---------------------------------------------------------------------------
// Priocast
// ---------------------------------------------------------------------------
PriocastService::PriocastService(const graph::Graph& g, std::vector<AnycastGroupSpec> groups)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kPriocast);
        o.groups = std::move(groups);
        return o;
      }()) {}

AnycastResult PriocastService::run(sim::Network& net, NodeId from, std::uint32_t gid) const {
  StatsScope scope(net);
  const std::size_t mark = net.local_deliveries().size();
  ofp::Packet pkt = layout_.make_packet(kEthTraversal);
  layout_.set(pkt, layout_.gid(), gid);
  pkt.payload_bytes = 64;
  net.packet_out(from, std::move(pkt));
  net.run();
  AnycastResult res;
  if (net.local_deliveries().size() > mark)
    res.delivered_at = net.local_deliveries()[mark].at;
  res.stats = scope.delta();
  return res;
}

// ---------------------------------------------------------------------------
// Blackhole via TTL binary search
// ---------------------------------------------------------------------------
BlackholeTtlService::BlackholeTtlService(const graph::Graph& g)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, make_opts(ServiceKind::kBlackholeTtl)) {}

namespace {

enum class ProbeOutcome { kFinish, kExpired, kSilent };

struct ProbeResult {
  ProbeOutcome outcome = ProbeOutcome::kSilent;
  NodeId at_switch = 0;
  PortNo out_port = 0;
};

}  // namespace

BlackholeTtlResult BlackholeTtlService::run(sim::Network& net, NodeId root,
                                            std::uint32_t max_ttl) const {
  StatsScope scope(net);
  BlackholeTtlResult res;

  auto probe = [&](std::uint32_t ttl) -> ProbeResult {
    const std::size_t mark = net.controller_msgs().size();
    ofp::Packet pkt = layout_.make_packet(kEthTraversal);
    pkt.ttl = static_cast<std::uint8_t>(ttl);
    net.packet_out(root, std::move(pkt));
    net.run();
    ++res.probes;
    ProbeResult pr;
    for (const auto* m : new_msgs(net, mark)) {
      if (m->reason == kReasonFinish) {
        pr.outcome = ProbeOutcome::kFinish;
        return pr;
      }
      if (m->reason == ofp::kReasonInvalidTtl) {
        pr.outcome = ProbeOutcome::kExpired;
        pr.at_switch = m->from;
        pr.out_port = static_cast<PortNo>(layout_.get(m->packet, layout_.out_port()));
        return pr;
      }
    }
    pr.outcome = ProbeOutcome::kSilent;
    return pr;
  };

  // First probe with the largest TTL: completes (no blackhole), expires
  // (network bigger than max_ttl — inconclusive), or vanishes (blackhole).
  ProbeResult first = probe(max_ttl);
  if (first.outcome != ProbeOutcome::kSilent) {
    res.blackhole_found = false;
    res.stats = scope.delta();
    return res;
  }

  // probe(T) expires for T < j and is silent for T >= j, where hop j dies.
  // Bisect for j; the expiry report at T = j-1 names the edge of hop j.
  std::uint32_t lo = 0, hi = max_ttl;  // probe(0) always expires at the root
  std::optional<ProbeResult> last_expired;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    ProbeResult pr = probe(mid);
    if (pr.outcome == ProbeOutcome::kExpired) {
      lo = mid;
      last_expired = pr;
    } else {
      hi = mid;
    }
  }
  if (!last_expired || lo != 0) {
    // Ensure we hold the report for exactly T = lo.
    if (!last_expired) last_expired = probe(lo);
  }
  if (last_expired->outcome == ProbeOutcome::kExpired) {
    res.blackhole_found = true;
    res.at_switch = last_expired->at_switch;
    res.out_port = last_expired->out_port;
  }
  res.stats = scope.delta();
  return res;
}

// ---------------------------------------------------------------------------
// Blackhole via smart counters
// ---------------------------------------------------------------------------
BlackholeCountersService::BlackholeCountersService(const graph::Graph& g,
                                                   std::uint32_t modulus,
                                                   std::optional<NodeId> inband_collector)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kBlackholeCounters);
        o.counter_modulus = modulus;
        o.inband_collector = inband_collector;
        return o;
      }()) {}

BlackholeCountersResult BlackholeCountersService::run(sim::Network& net,
                                                      NodeId root) const {
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();

  // Traversal 1: dance over every new link, feeding the port counters.
  net.packet_out(root, layout_.make_packet(kEthTraversal));
  net.run();

  // Traversal 2 ("sent with a time difference of twice the maximum delay"):
  // walk the counters and report 1-valued ports.
  ofp::Packet second = layout_.make_packet(kEthTraversal);
  layout_.set(second, layout_.phase2(), 1);
  net.packet_out(root, std::move(second));
  net.run();

  BlackholeCountersResult res;
  for (const Report& m : collect_reports(net, layout_, mark, lmark,
                                         compiler_.options().inband_collector)) {
    if (m.reason == kReasonBlackholePort) {
      res.reports.push_back(
          {m.from, static_cast<PortNo>(layout_.get(*m.packet, layout_.out_port()))});
    }
  }
  res.stats = scope.delta();
  return res;
}

void BlackholeCountersService::reset_counters(sim::Network& net) const {
  for (graph::NodeId v = 0; v < graph_.node_count(); ++v) {
    net.sw(v).groups().reset_select_cursors();
    // Account the re-arm as one control message per switch with ports.
    if (graph_.degree(v) > 0) ++net.stats().packet_outs;
  }
}

BlackholeCountersService::SweepResult BlackholeCountersService::find_all(
    sim::Network& net, NodeId root, std::uint32_t max_rounds) const {
  StatsScope scope(net);
  SweepResult sweep;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    ++sweep.rounds;
    BlackholeCountersResult res = run(net, root);
    if (res.reports.empty()) break;
    for (const auto& r : res.reports) {
      sweep.found.push_back(r);
      // Operator action: take the faulty link down; FAST-FAILOVER routes
      // the next round around it.
      net.set_link_up(graph_.edge_at(r.at_switch, r.out_port), false);
    }
    reset_counters(net);
  }
  sweep.stats = scope.delta();
  return sweep;
}

// ---------------------------------------------------------------------------
// Packet-loss monitoring
// ---------------------------------------------------------------------------
PacketLossMonitor::PacketLossMonitor(const graph::Graph& g,
                                     std::vector<std::uint32_t> moduli)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kPacketLoss);
        o.loss_moduli = std::move(moduli);
        return o;
      }()) {}

void PacketLossMonitor::send_data(sim::Network& net, NodeId u, PortNo port,
                                  std::uint32_t count) const {
  for (std::uint32_t k = 0; k < count; ++k) {
    ofp::Packet pkt = layout_.make_packet(kEthData);
    layout_.set(pkt, layout_.out_port(), port);
    pkt.payload_bytes = 512;
    net.packet_out(u, std::move(pkt));
    net.run();
  }
}

PacketLossResult PacketLossMonitor::detect(sim::Network& net, NodeId root) const {
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  net.packet_out(root, layout_.make_packet(kEthTraversal));
  net.run();
  PacketLossResult res;
  for (const auto* m : new_msgs(net, mark)) {
    if (m->reason == kReasonLossDetected) {
      res.reports.push_back(
          {m->from, static_cast<PortNo>(layout_.get(m->packet, layout_.out_port()))});
    }
  }
  res.stats = scope.delta();
  return res;
}

// ---------------------------------------------------------------------------
// Load inference
// ---------------------------------------------------------------------------
LoadInferenceService::LoadInferenceService(const graph::Graph& g,
                                           std::vector<std::uint32_t> moduli)
    : graph_(g), layout_(graph_), moduli_(moduli),
      compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kLoadInference);
        o.loss_moduli = std::move(moduli);
        return o;
      }()) {
  for (std::size_t a = 0; a < moduli_.size(); ++a)
    for (std::size_t b = a + 1; b < moduli_.size(); ++b)
      if (std::gcd(moduli_[a], moduli_[b]) != 1)
        throw std::invalid_argument("LoadInferenceService: moduli must be coprime");
}

std::uint64_t LoadInferenceService::modulus_product() const {
  std::uint64_t m = 1;
  for (auto v : moduli_) m *= v;
  return m;
}

void LoadInferenceService::send_data(sim::Network& net, NodeId u, PortNo port,
                                     std::uint32_t count) const {
  for (std::uint32_t k = 0; k < count; ++k) {
    ofp::Packet pkt = layout_.make_packet(kEthData);
    layout_.set(pkt, layout_.out_port(), port);
    pkt.payload_bytes = 512;
    net.packet_out(u, std::move(pkt));
    net.run();
  }
}

LoadInferenceResult LoadInferenceService::infer(sim::Network& net, NodeId root) const {
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  net.packet_out(root, layout_.make_packet(kEthTraversal));
  net.run();

  LoadInferenceResult res;
  std::map<PortLoadKey, std::vector<std::optional<std::uint32_t>>> residues;
  for (const auto* m : new_msgs(net, mark)) {
    if (m->reason != kReasonFinish) continue;
    res.complete = true;
    for (std::uint32_t lbl : m->packet.labels) {
      const LoadRecord r = decode_load(lbl);
      PortLoadKey key{r.node, r.port, r.ingress};
      auto& vec = residues[key];
      vec.resize(moduli_.size());
      if (r.modulus_idx < moduli_.size()) vec[r.modulus_idx] = r.value;
    }
  }
  // CRT by direct search (products are small).
  const std::uint64_t M = modulus_product();
  for (auto& [key, vec] : residues) {
    for (std::uint64_t x = 0; x < M; ++x) {
      bool ok = true;
      for (std::size_t k = 0; k < moduli_.size(); ++k)
        ok = ok && vec[k].has_value() && (x % moduli_[k]) == *vec[k];
      if (ok) {
        res.loads[key] = x;
        break;
      }
    }
  }
  res.stats = scope.delta();
  return res;
}

// ---------------------------------------------------------------------------
// Critical-node detection
// ---------------------------------------------------------------------------
CriticalNodeService::CriticalNodeService(const graph::Graph& g,
                                         std::optional<NodeId> inband_collector,
                                         bool epoch_guard, bool header_guard,
                                         PipelineExtras extras)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kCritical);
        o.inband_collector = inband_collector;
        o.epoch_guard = epoch_guard;
        o.header_guard = header_guard;
        o.probe_sink = extras.probe_sink;
        o.data_forwarding = extras.data_forwarding;
        return o;
      }()) {}

CriticalResult CriticalNodeService::run(sim::Network& net, NodeId v) const {
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();
  net.packet_out(v, layout_.make_packet(kEthTraversal));
  net.run();
  CriticalResult res;
  for (const Report& m : collect_reports(net, layout_, mark, lmark,
                                         compiler_.options().inband_collector)) {
    if (m.reason == kReasonCritTrue) res.critical = true;
    if (m.reason == kReasonCritFalse && !res.critical.has_value()) res.critical = false;
  }
  res.stats = scope.delta();
  return res;
}

CriticalResult CriticalNodeService::run_hardened(sim::Network& net, NodeId v,
                                                 const RetryPolicy& policy,
                                                 HardenedStats* hardened) const {
  require_epoch_guard(compiler_);
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();
  const auto collector = compiler_.options().inband_collector;
  auto verdict_of = [&](std::uint32_t epoch) -> std::optional<bool> {
    std::optional<bool> verdict;
    for (const Report& m :
         collect_reports(net, layout_, mark, lmark, collector)) {
      if (layout_.get(*m.packet, layout_.epoch()) != epoch) continue;
      if (m.reason == kReasonCritTrue) verdict = true;
      if (m.reason == kReasonCritFalse && !verdict.has_value()) verdict = false;
    }
    return verdict;
  };
  auto verdict_seen = [&](std::uint32_t e) { return verdict_of(e).has_value(); };
  HardenedDriver drv(net, layout_, v, policy, nullptr, verdict_seen);
  drv.run();
  CriticalResult res;
  res.critical = verdict_of(drv.epoch());
  res.stats = scope.delta();
  if (hardened)
    *hardened = {drv.attempts(), drv.epoch(), classify_outcome(drv, verdict_seen)};
  return res;
}

// ---------------------------------------------------------------------------
// Critical-link detection
// ---------------------------------------------------------------------------
CriticalLinkService::CriticalLinkService(const graph::Graph& g,
                                         std::optional<NodeId> inband_collector)
    : graph_(g), layout_(graph_), compiler_(graph_, layout_, [&] {
        CompilerOptions o = make_opts(ServiceKind::kCriticalLink);
        o.inband_collector = inband_collector;
        return o;
      }()) {}

CriticalLinkResult CriticalLinkService::run(sim::Network& net, NodeId u,
                                            PortNo port) const {
  if (port == graph::kNoPort || port > graph_.degree(u))
    throw std::invalid_argument("CriticalLinkService: no such port");
  StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();
  ofp::Packet pkt = layout_.make_packet(kEthTraversal);
  layout_.set(pkt, layout_.out_port(), port);
  net.packet_out(u, std::move(pkt));
  net.run();
  CriticalLinkResult res;
  for (const Report& m : collect_reports(net, layout_, mark, lmark,
                                         compiler_.options().inband_collector)) {
    if (m.reason == kReasonLinkNotCritical) res.critical = false;
    if (m.reason == kReasonLinkCritical && !res.critical.has_value())
      res.critical = true;
  }
  res.stats = scope.delta();
  return res;
}

}  // namespace ss::core
