#pragma once
// Load-inference record encoding (§4: "the smart counter concept introduced
// in this paper may also be used to infer network loads").
//
// The load-inference traversal reads, at every first visit, each port's
// per-direction traffic counters (smart counters fed by the data-plane
// rules) and pushes one 32-bit label per (port, direction, modulus):
//
//   [31]    direction   0 = egress counter, 1 = ingress counter
//   [30:29] modulus idx (which of the configured prime moduli)
//   [28:17] node        (12 bits)
//   [16:8]  port        (9 bits)
//   [7:0]   value       (counter residue, < modulus <= 16)
//
// With k coprime moduli the controller reconstructs the true count modulo
// their product by CRT — e.g. {13, 15, 16} recovers loads up to 3120 from
// three 4-bit counters.

#include <cstdint>
#include <stdexcept>

#include "graph/graph.hpp"

namespace ss::core {

struct LoadRecord {
  bool ingress = false;
  std::uint32_t modulus_idx = 0;
  graph::NodeId node = 0;
  graph::PortNo port = 0;
  std::uint32_t value = 0;
};

inline std::uint32_t encode_load(bool ingress, std::uint32_t mod_idx,
                                 graph::NodeId node, graph::PortNo port,
                                 std::uint32_t value) {
  if (mod_idx >= 4 || node >= (1u << 12) || port >= (1u << 9) || value >= (1u << 8))
    throw std::out_of_range("encode_load: field overflow");
  return (static_cast<std::uint32_t>(ingress) << 31) | (mod_idx << 29) |
         (node << 17) | (port << 8) | value;
}

inline LoadRecord decode_load(std::uint32_t label) {
  LoadRecord r;
  r.ingress = (label >> 31) != 0;
  r.modulus_idx = (label >> 29) & 0x3;
  r.node = (label >> 17) & 0xfff;
  r.port = (label >> 8) & 0x1ff;
  r.value = label & 0xff;
  return r;
}

}  // namespace ss::core
