#pragma once
// EtherTypes distinguishing SmartSouth service packets from regular traffic.
// Real deployments would use an OUI-specific experimental EtherType; the
// values only need to be distinct and matchable.

#include <cstdint>

namespace ss::core {

inline constexpr std::uint16_t kEthTraversal = 0x88b5;  // SmartSouth trigger packet
inline constexpr std::uint16_t kEthData = 0x0800;       // background data traffic
inline constexpr std::uint16_t kEthProbe = 0x88b6;      // packet-loss probe
inline constexpr std::uint16_t kEthReport = 0x88b8;     // in-band report copy
inline constexpr std::uint16_t kEthFlow = 0x88b7;       // hashed-flow telemetry traffic
inline constexpr std::uint16_t kEthLldp = 0x88cc;       // LLDP (baseline discovery; also
                                                        // the forged-probe attack surface)

}  // namespace ss::core
