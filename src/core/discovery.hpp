#pragma once
// Attack-hardened topology discovery built on the snapshot service.
//
// Threat model (sOFTDP / "Limitations of OpenFlow Topology Discovery"): an
// attacker holding one compromised port can inject forged discovery frames
// and relay genuine ones between non-adjacent ports, tricking the control
// plane into admitting links that do not exist.  The baseline
// LldpDiscovery is trivially vulnerable — any well-formed LLDP frame is
// believed.  This driver runs the in-band snapshot traversal behind three
// defenses:
//
//   1. Probe nonce.  Each round draws a random nonce and pushes it as the
//      BOTTOM label of the trigger packet's stack.  The traversal's record
//      discipline is push/pop balanced, so the nonce survives to the final
//      report — and an attacker forging a "finished traversal" in-band
//      cannot know it.  Reports whose bottom label is not this round's
//      nonce are rejected before decoding.
//   2. Ingress consistency.  Decoded edges are validated against what a
//      switch can physically report: port numbers within 1..degree, no
//      self-loops, and every (switch, port) endpoint wired to at most one
//      peer.  Conflicting edges are quarantined rather than admitted.
//   3. Rate guard.  A round requested while the fabric is churning (e.g. a
//      targeted flap storm whose purpose is to force re-discovery during
//      the attacker's window) is deferred, boundedly, until churn settles.
//
// The undefended configuration (all three toggles off) is the ablation the
// adversarial arena measures against.

#include <cstdint>
#include <vector>

#include "core/services.hpp"
#include "util/rng.hpp"

namespace ss::core {

struct DiscoveryDefense {
  bool nonce = true;
  bool ingress_check = true;
  bool rate_guard = true;
  std::uint32_t churn_threshold = 4;  // link events per window that defer a round
  std::uint32_t max_deferrals = 2;    // consecutive deferrals before running anyway
  // Per-round simulator event budget.  A wormhole-forked traversal token
  // can loop between two switches without ever draining; when a round burns
  // through this budget it is ABORTED: in-flight frames are flushed and the
  // round reports nothing (complete = false) rather than hanging the run.
  // Orders of magnitude above any legitimate round (~1k events on torus-16).
  std::uint64_t round_event_budget = 300'000;
};

/// One discovery round's outcome.
struct DiscoveryOutcome {
  bool complete = false;     // an accepted finish report arrived and decoded
  bool deferred = false;     // rate guard skipped this round (nothing ran)
  bool decode_error = false; // accepted records failed stack decoding
  bool aborted = false;      // round burned its event budget (livelocked walk)
  std::vector<SnapshotEdge> edges;      // admitted edges (post-validation)
  std::uint64_t reports_rejected = 0;   // finish reports failing the nonce check
  std::uint64_t edges_quarantined = 0;  // edges dropped by ingress consistency
  HardenedStats hardened;
  RunStats stats;

  /// Canonical "u:pu-v:pv" line set (same form as SnapshotResult).
  std::string canonical() const;
};

/// Edges in `edges` that do not exist in the ground-truth graph — the
/// quantity the kNoFabricatedLink invariant asserts is zero for every map
/// a defended discovery admits.
std::size_t count_fabricated(const graph::Graph& g,
                             const std::vector<SnapshotEdge>& edges);

class HardenedDiscovery {
 public:
  explicit HardenedDiscovery(const graph::Graph& g, DiscoveryDefense defense = {});

  void install(sim::Network& net) const { snapshot_.install(net); }

  /// One discovery round from `root`: draw the round nonce from `rng`
  /// (always one draw, defended or not, so episodes stay draw-for-draw
  /// comparable across defense configurations), inject the decorated
  /// trigger under the watchdog/retry policy, then validate and decode the
  /// accepted epoch's reports.  `churn_events` is the caller's count of
  /// link-state events since the previous round — the rate guard's input.
  DiscoveryOutcome round(sim::Network& net, graph::NodeId root,
                         const RetryPolicy& policy, util::Rng& rng,
                         std::uint64_t churn_events = 0);

  const TagLayout& layout() const { return snapshot_.layout(); }
  const SnapshotService& snapshot() const { return snapshot_; }
  const DiscoveryDefense& defense() const { return defense_; }

 private:
  graph::Graph graph_;  // owned copy: services must outlive no one
  DiscoveryDefense defense_;
  SnapshotService snapshot_;
  std::uint32_t consecutive_deferrals_ = 0;
};

}  // namespace ss::core
