#include "core/compiler.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "core/eth_types.hpp"
#include "core/labels.hpp"
#include "core/load_labels.hpp"
#include "core/topk_labels.hpp"
#include "core/xfsm_labels.hpp"
#include "util/strings.hpp"

namespace ss::core {

using graph::NodeId;
using graph::PortNo;
using ofp::ActClearLabels;
using ofp::ActClearTagRange;
using ofp::ActDecTtl;
using ofp::ActDrop;
using ofp::ActGroup;
using ofp::ActionList;
using ofp::ActLoadState;
using ofp::ActStoreState;
using ofp::ActOutput;
using ofp::ActPopLabel;
using ofp::ActPushLabel;
using ofp::ActPushTagField;
using ofp::ActSetTag;
using ofp::Bucket;
using ofp::FlowEntry;
using ofp::Group;
using ofp::GroupType;
using ofp::Match;
using ofp::TableId;

ofp::GroupId scan_group_id(PortNo first, PortNo parent, bool phase2_root) {
  return 0x100000u | (phase2_root ? 0x80000u : 0u) | (first << 10) | parent;
}

ofp::GroupId counter_group_id(std::uint32_t family, PortNo port) {
  return 0x200000u | (family << 12) | port;
}

ofp::GroupId link_scan_group_id(PortNo first, PortNo tested) {
  return 0x400000u | (first << 10) | tested;
}

namespace {

// Rule priorities inside the classify table, high to low.  The template's
// case analysis (Algorithm 1 lines 5-10) becomes priority layers over
// enumerated (in, cur, par) values — OpenFlow cannot compare two fields, so
// equality/inequality tests are unrolled, following ref [2].
constexpr std::uint32_t kPrioRestart = 8000;     // priocast phase-2 phase switch
constexpr std::uint32_t kPrioFirstVisit = 7000;  // cur = 0
constexpr std::uint32_t kPrioFromCur = 6000;     // in = cur
constexpr std::uint32_t kPrioPopParent = 5100;   // cur = par bounce (snapshot pop)
constexpr std::uint32_t kPrioPopLess = 5000;     // in < cur bounce (snapshot pop)
constexpr std::uint32_t kPrioBounce = 4000;      // default Visit_not_from_cur

}  // namespace

struct TemplateCompiler::Ctx {
  ofp::Switch& sw;
  NodeId i;
  PortNo deg;
  TableId tid_cmp0 = 0;      // packet-loss compare chain start
  TableId tid_classify = 0;
  TableId tid_chain = 0;     // blackhole phase-2 chain start
  TableId tid_flow0 = 0;     // top-K sketch row tables (sketch hosts only)
  bool sketch_host = false;  // first visits here enter the read-out chain
                             // (top-K sketch host, or XFSM host with banks)
  std::uint32_t topk_cells = 0;  // d * w
  bool xfsm_host = false;        // this switch hosts the XFSM
  std::uint32_t xfsm_units = 0;  // read-out chain length (banks)
  TableId tid_xfsm0 = 0;         // XFSM load/transition table block

  /// Rules staged per table during emit_*; install_switch flushes each
  /// table with one FlowTable::add_all (sort once instead of O(n) inserts
  /// per rule).  Cookie/order semantics are identical to immediate add().
  std::map<TableId, std::vector<FlowEntry>> staged;
};

TemplateCompiler::TemplateCompiler(const graph::Graph& g, const TagLayout& layout,
                                   CompilerOptions opts)
    : graph_(&g), layout_(&layout), opts_(std::move(opts)) {
  if (opts_.counter_modulus < 2 || opts_.counter_modulus > 16)
    throw std::invalid_argument("counter_modulus must be in [2,16]");
  if (opts_.loss_moduli.empty() || opts_.loss_moduli.size() > kScratchRegs)
    throw std::invalid_argument("loss_moduli: need 1..kScratchRegs entries");
  for (auto m : opts_.loss_moduli)
    if (m < 2 || m > 16) throw std::invalid_argument("loss modulus must be in [2,16]");
  if (opts_.kind == ServiceKind::kSnapshot && opts_.fragment_limit == 1)
    throw std::invalid_argument("fragment_limit must be 0 or >= 2");
  for (const auto& gs : opts_.groups)
    if (gs.gid == 0) throw std::invalid_argument("anycast gid must be nonzero");

  if (opts_.kind == ServiceKind::kTopkSweep) {
    if (!layout.has_flow_key())
      throw std::invalid_argument(
          "kTopkSweep: layout must be built with TagExtras::flow_key");
    if (opts_.topk_switches.empty())
      throw std::invalid_argument("topk_switches: need at least one sketch host");
    for (NodeId v : opts_.topk_switches)
      if (v >= g.node_count())
        throw std::invalid_argument("topk_switches: unknown node");
    if (opts_.topk_rows == 0 ||
        opts_.topk_rows * opts_.topk_row_bits > layout.flow_key().width)
      throw std::invalid_argument("topk geometry: need 0 < d*b <= flow_key width");
    if (((opts_.topk_rows + opts_.topk_sig_rows) << opts_.topk_row_bits) >
        (1u << 12))
      throw std::invalid_argument(
          "topk geometry: (d+sig)*2^b must fit the 12-bit cell field");
    if (opts_.topk_sig_rows != 0 &&
        (!layout.has_flow_sig() ||
         layout.flow_sig().width != opts_.topk_sig_rows * opts_.topk_row_bits))
      throw std::invalid_argument(
          "topk geometry: layout flow_sig width must equal sig_rows * b");
    if (opts_.topk_moduli.empty() || opts_.topk_moduli.size() > 2 * kScratchRegs)
      throw std::invalid_argument("topk_moduli: need 1..2*kScratchRegs entries");
    for (std::size_t a = 0; a < opts_.topk_moduli.size(); ++a) {
      if (opts_.topk_moduli[a] < 2 || opts_.topk_moduli[a] > 16)
        throw std::invalid_argument("topk modulus must be in [2,16]");
      for (std::size_t b = a + 1; b < opts_.topk_moduli.size(); ++b)
        if (std::gcd(opts_.topk_moduli[a], opts_.topk_moduli[b]) != 1)
          throw std::invalid_argument("topk_moduli must be pairwise coprime");
    }
  }

  if (opts_.kind == ServiceKind::kXfsm) {
    const XfsmProgram& P = opts_.xfsm;
    if (!layout.has_xfsm())
      throw std::invalid_argument("kXfsm: layout must be built with TagExtras::xfsm");
    if (opts_.xfsm_switches.empty())
      throw std::invalid_argument("xfsm_switches: need at least one host");
    for (NodeId v : opts_.xfsm_switches)
      if (v >= g.node_count())
        throw std::invalid_argument("xfsm_switches: unknown node");
    if (P.num_states == 0 || P.num_states > 256)
      throw std::invalid_argument("xfsm: num_states must be in [1,256]");
    if (P.transitions.empty() || P.transitions.size() > 2048)
      throw std::invalid_argument("xfsm: need 1..2048 transitions");
    if (opts_.xfsm_moduli.empty() || opts_.xfsm_moduli.size() > 2 * kScratchRegs)
      throw std::invalid_argument("xfsm_moduli: need 1..2*kScratchRegs entries");
    for (std::size_t a = 0; a < opts_.xfsm_moduli.size(); ++a) {
      if (opts_.xfsm_moduli[a] < 2 || opts_.xfsm_moduli[a] > 16)
        throw std::invalid_argument("xfsm modulus must be in [2,16]");
      for (std::size_t b = a + 1; b < opts_.xfsm_moduli.size(); ++b)
        if (std::gcd(opts_.xfsm_moduli[a], opts_.xfsm_moduli[b]) != 1)
          throw std::invalid_argument("xfsm_moduli must be pairwise coprime");
    }
    if ((P.lookup_scope == XfsmScope::kFlowKey ||
         P.update_scope == XfsmScope::kFlowKey) &&
        !layout.has_flow_key())
      throw std::invalid_argument("xfsm: flow-key scope needs TagExtras::flow_key");
    if ((P.lookup_scope == XfsmScope::kAux ||
         P.update_scope == XfsmScope::kAux) &&
        !P.use_aux)
      throw std::invalid_argument("xfsm: aux scope needs use_aux");
    if ((P.store_src == XfsmStoreSrc::kEvent || P.event_from_in_port) &&
        !P.use_event)
      throw std::invalid_argument("xfsm: event store/capture needs use_event");
    if (P.count_occupancy &&
        (P.lookup_scope != P.update_scope || P.store_src != XfsmStoreSrc::kState))
      throw std::invalid_argument(
          "xfsm: count_occupancy needs lookup==update scope and kState store "
          "(otherwise the written key's previous state is unknown in-band)");
    auto check_arm = [&](const XfsmArm& arm, const XfsmTransition& t) {
      if (arm.next >= 0 && static_cast<std::uint32_t>(arm.next) >= P.num_states)
        throw std::invalid_argument("xfsm: arm next state out of range");
      if (arm.act == XfsmActKind::kFloodExceptIn && t.in_port < 0)
        throw std::invalid_argument("xfsm: kFloodExceptIn needs a concrete in_port");
    };
    for (const XfsmTransition& t : P.transitions) {
      if (t.state >= P.num_states)
        throw std::invalid_argument("xfsm: transition state out of range");
      if (t.event >= 0 && !P.use_event)
        throw std::invalid_argument("xfsm: event match needs use_event");
      if (t.aux >= 0 && !P.use_aux)
        throw std::invalid_argument("xfsm: aux match needs use_aux");
      check_arm(t.pass, t);
      if (t.guard) {
        if (t.guard->bank >= P.guard_banks)
          throw std::invalid_argument("xfsm: guard bank out of range");
        if (t.guard->pass_residue >= opts_.xfsm_moduli[0])
          throw std::invalid_argument("xfsm: guard pass_residue >= moduli[0]");
        check_arm(t.fail, t);
      }
    }
  }

  // BFS from `sink`; each node's route entry is the port of its BFS parent
  // (toward the sink).  Computed in the offline stage — the same stage that
  // installs all other rules.
  auto bfs_route = [&g](NodeId sink) {
    if (sink >= g.node_count())
      throw std::invalid_argument("route sink: unknown node");
    std::vector<PortNo> route(g.node_count(), graph::kNoPort);
    std::vector<bool> seen(g.node_count(), false);
    std::vector<NodeId> queue{sink};
    seen[sink] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (PortNo p = 1; p <= g.degree(u); ++p) {
        const NodeId v = g.neighbor(u, p)->node;
        if (seen[v]) continue;
        seen[v] = true;
        route[v] = g.neighbor(u, p)->port;  // v's port back toward u
        queue.push_back(v);
      }
    }
    return route;
  };
  if (opts_.inband_collector) report_route_ = bfs_route(*opts_.inband_collector);
  if (opts_.probe_sink) probe_route_ = bfs_route(*opts_.probe_sink);
}

bool TemplateCompiler::is_topk_switch(NodeId i) const {
  return std::find(opts_.topk_switches.begin(), opts_.topk_switches.end(), i) !=
         opts_.topk_switches.end();
}

bool TemplateCompiler::is_xfsm_switch(NodeId i) const {
  return std::find(opts_.xfsm_switches.begin(), opts_.xfsm_switches.end(), i) !=
         opts_.xfsm_switches.end();
}

std::uint32_t TemplateCompiler::xfsm_unit_count() const {
  const XfsmProgram& P = opts_.xfsm;
  return (P.count_occupancy ? 2 * P.num_states : 0) + P.guard_banks;
}

void TemplateCompiler::install(sim::Network& net) const {
  for (NodeId v = 0; v < graph_->node_count(); ++v)
    install_switch(net.sw(v), v);
}

void TemplateCompiler::install_switch(ofp::Switch& sw, NodeId i) const {
  Ctx c{sw, i, graph_->degree(i)};
  const auto k_loss =
      opts_.kind == ServiceKind::kPacketLoss
          ? static_cast<TableId>(opts_.loss_moduli.size())
          : TableId{0};
  // Packet-loss compare tables (if any) sit between aux and classify.
  c.tid_cmp0 = kTableClassify;
  c.tid_classify = static_cast<TableId>(kTableClassify + k_loss);
  c.tid_chain = static_cast<TableId>(c.tid_classify + 1);
  if (opts_.kind == ServiceKind::kTopkSweep) {
    c.sketch_host = is_topk_switch(i);
    c.topk_cells = (opts_.topk_rows + opts_.topk_sig_rows) << opts_.topk_row_bits;
    // Sketch row tables sit after the read-out chain (cells + exhaust).
    c.tid_flow0 = static_cast<TableId>(c.tid_chain + c.topk_cells + 1);
  }
  if (opts_.kind == ServiceKind::kXfsm) {
    c.xfsm_host = is_xfsm_switch(i);
    c.xfsm_units = xfsm_unit_count();
    // A host with counter banks enters the read-out chain at first visits,
    // exactly like a sketch host; a bank-less machine has no chain and the
    // sweep passes straight through.
    c.sketch_host = c.xfsm_host && c.xfsm_units > 0;
    // Machine tables (load / transition / guard checks / egress) sit after
    // the read-out chain (units + exhaust).
    c.tid_xfsm0 = static_cast<TableId>(
        c.tid_chain + (c.xfsm_units > 0 ? c.xfsm_units + 1 : 0));
    if (c.xfsm_host) sw.state().set_capacity(opts_.xfsm_capacity);
  }

  emit_pre_table(c);
  emit_start_table(c);
  emit_aux_table(c);
  emit_classify_table(c);
  emit_scan_groups(c);
  emit_counters(c);
  if (opts_.kind == ServiceKind::kBlackholeCounters) emit_phase2_chain(c);
  if (opts_.kind == ServiceKind::kPacketLoss) emit_loss_chain(c);
  if (opts_.kind == ServiceKind::kLoadInference) emit_load_chain(c);
  if (c.sketch_host && opts_.kind == ServiceKind::kTopkSweep) {
    emit_topk_chain(c);
    emit_topk_flow_tables(c);
  }
  if (opts_.kind == ServiceKind::kXfsm && c.xfsm_host) {
    if (c.xfsm_units > 0) emit_xfsm_chain(c);
    emit_xfsm_tables(c);
  }

  // Bulk-install everything the emitters staged: one sort per table.
  for (auto& [tid, rules] : c.staged) sw.table(tid).add_all(std::move(rules));
}

namespace {

void add_rule(TemplateCompiler::Ctx& c, TableId tid, std::uint32_t prio, Match m,
              ActionList a, std::optional<TableId> goto_t, std::string name) {
  FlowEntry e;
  e.priority = prio;
  e.match = std::move(m);
  e.actions = std::move(a);
  e.goto_table = goto_t;
  e.name = std::move(name);
  c.staged[tid].push_back(std::move(e));
}

ActSetTag set_field(FieldRef f, std::uint64_t v) { return {f.offset, f.width, v}; }

Match match_tag(const Match& base, FieldRef f, std::uint64_t v) {
  Match m = base;
  m.on_tag(f.offset, f.width, v);
  return m;
}

// Scratch register carrying modulus m's residue during the top-K read-out:
// the a-side registers first, then the b-side (the sweep never runs the
// packet-loss compare chain, so both sides are free).
FieldRef topk_scratch(const TagLayout& L, std::uint32_t m) {
  return m < kScratchRegs ? L.scratch_a(m) : L.scratch_b(m - kScratchRegs);
}

}  // namespace

// ---------------------------------------------------------------------------
// Reports: out-of-band packet-in, or — with inband_collector — a re-typed
// copy forwarded hop by hop to the collector.  The eth_type is restored
// right after the output so the original packet continues its traversal.
// ---------------------------------------------------------------------------
ActionList TemplateCompiler::report_actions(NodeId i, std::uint32_t reason,
                                            PortNo via_port) const {
  if (!opts_.inband_collector)
    return {ActOutput{ofp::kPortController, reason}};
  const TagLayout& L = *layout_;
  const PortNo route = report_route_[i];
  PortNo out = route == graph::kNoPort ? ofp::kPortLocal : route;
  if (via_port != 0 && route != graph::kNoPort) out = via_port;
  return {ActSetTag{L.reason().offset, L.reason().width, reason},
          ActSetTag{L.reporter().offset, L.reporter().width, i + 1},
          ofp::ActSetEthType{kEthReport},
          ActOutput{out},
          ofp::ActSetEthType{kEthTraversal}};
}

// ---------------------------------------------------------------------------
// Table 0: service pre-checks (first rows of Table 1 — "the beginning of the
// SmartSouth template").
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_pre_table(Ctx& c) const {
  const TagLayout& L = *layout_;
  Match trav;
  trav.on_eth(kEthTraversal);

  if (opts_.epoch_guard) {
    // OpenFlow has no "not equal" match, so the guard enumerates the
    // kEpochSpace - 1 stale epochs explicitly; set_current_epoch rotates
    // the values in place when a retry bumps the accepted epoch.
    std::uint32_t slot = 0;
    for (std::uint64_t e = 0; e < kEpochSpace; ++e) {
      if (e == 0) continue;  // accepted epoch at install time
      add_rule(c, kTablePre, kPrioEpochGuard, match_tag(trav, L.epoch(), e),
               {ActDrop{}}, std::nullopt, util::cat("epoch.stale.", slot++));
    }
  }

  if (opts_.header_guard) {
    // Impossible-state validation (again by enumeration — no "greater than"
    // match in OpenFlow).  Three families, all unreachable by compiled
    // rules: start outside {0,1,2}, and this node's par/cur naming a port
    // above its degree.  Nodes whose degree saturates the field width emit
    // no par/cur guards — every encodable value is a real port there.
    std::uint32_t slot = 0;
    const FieldRef st = L.start();
    for (std::uint64_t v = 3; v < (std::uint64_t{1} << st.width); ++v)
      add_rule(c, kTablePre, kPrioHeaderGuard, match_tag(trav, st, v),
               {ActDrop{}}, std::nullopt, util::cat("hdr.guard.start.", slot++));
    for (const auto& [f, what] :
         {std::pair<FieldRef, const char*>{L.par(c.i), "par"},
          std::pair<FieldRef, const char*>{L.cur(c.i), "cur"}}) {
      for (std::uint64_t v = c.deg + 1; v < (std::uint64_t{1} << f.width); ++v)
        add_rule(c, kTablePre, kPrioHeaderGuard, match_tag(trav, f, v),
                 {ActDrop{}}, std::nullopt,
                 util::cat("hdr.guard.", what, ".", slot++));
    }
  }

  switch (opts_.kind) {
    case ServiceKind::kAnycast: {
      for (const AnycastGroupSpec& gs : opts_.groups) {
        if (!gs.members.count(c.i)) continue;
        // "a successful match triggers the forwarding of the packet to a
        // predefined (self) port"
        add_rule(c, kTablePre, 500, match_tag(trav, L.gid(), gs.gid),
                 {ActOutput{ofp::kPortLocal}}, std::nullopt,
                 util::cat("anycast.deliver.g", gs.gid));
      }
      break;
    }
    case ServiceKind::kChainedAnycast: {
      for (std::uint32_t k = 0; k < kChainSlots; ++k) {
        for (const AnycastGroupSpec& gs : opts_.groups) {
          if (!gs.members.count(c.i)) continue;
          Match m = match_tag(match_tag(trav, L.chain_idx(), k), L.chain_slot(k), gs.gid);
          if (k + 1 < kChainSlots) {
            // Final hop iff the next chain slot is empty.
            add_rule(c, kTablePre, 600, match_tag(m, L.chain_slot(k + 1), 0),
                     {ActOutput{ofp::kPortLocal}}, std::nullopt,
                     util::cat("chain.final.k", k, ".g", gs.gid));
            // Otherwise: hand to the local middlebox, wipe the traversal
            // state (start + all par/cur) and restart as the new DFS root.
            const FieldRef region = L.traversal_state_region();
            add_rule(c, kTablePre, 500, m,
                     {ActOutput{ofp::kPortLocal}, set_field(L.chain_idx(), k + 1),
                      ActClearTagRange{region.offset, region.width}},
                     kTableStart, util::cat("chain.consume.k", k, ".g", gs.gid));
          } else {
            add_rule(c, kTablePre, 600, m, {ActOutput{ofp::kPortLocal}}, std::nullopt,
                     util::cat("chain.final.k", k, ".g", gs.gid));
          }
        }
      }
      break;
    }
    case ServiceKind::kPriocast: {
      for (const AnycastGroupSpec& gs : opts_.groups) {
        auto it = gs.members.find(c.i);
        if (it == gs.members.end()) continue;
        const std::uint32_t prio_val = it->second;
        // Phase 2: the elected receiver takes the packet.
        Match m2 = match_tag(match_tag(trav, L.start(), 2), L.opt_id(), c.i + 1);
        add_rule(c, kTablePre, 600, m2, {ActOutput{ofp::kPortLocal}}, std::nullopt,
                 util::cat("priocast.deliver.g", gs.gid));
        // Phase 1 (start in {0,1}): update (opt_id, opt_val) when this
        // node's priority beats the best so far.  `opt_val < p_i` unrolls
        // into prefix rules (OpenFlow cannot compare fields).
        Match m1 = match_tag(trav, L.gid(), gs.gid);
        m1.on_tag_masked(L.start().offset, L.start().width, 0, 0b10);
        const auto lt = ofp::less_than_decomposition(L.opt_val().offset,
                                                     L.opt_val().width, prio_val);
        for (std::size_t t = 0; t < lt.size(); ++t) {
          Match m = m1;
          m.tag_matches.push_back(lt[t]);
          add_rule(c, kTablePre, 500, m,
                   {set_field(L.opt_val(), prio_val), set_field(L.opt_id(), c.i + 1)},
                   kTableStart, util::cat("priocast.update.g", gs.gid, ".", t));
        }
      }
      break;
    }
    case ServiceKind::kLoadInference:
    case ServiceKind::kPacketLoss: {
      // Background data traffic and probes both feed the per-port in/out
      // smart counters; for kPacketLoss the traversal packet's own counting
      // happens in the aux table and in the scan-group buckets.
      for (PortNo t = 1; t <= c.deg; ++t) {
        ActionList data_out, data_in;
        for (std::size_t k = 0; k < opts_.loss_moduli.size(); ++k) {
          data_out.push_back(ActGroup{counter_group_id(kFamLossOut0 + k, t)});
          data_in.push_back(ActGroup{counter_group_id(kFamLossIn0 + k, t)});
        }
        Match mo;
        mo.on_eth(kEthData).on_port(ofp::kPortController);
        mo.on_tag(L.out_port().offset, L.out_port().width, t);
        ActionList out_acts = data_out;
        out_acts.push_back(ActOutput{t});
        add_rule(c, kTablePre, 700, mo, out_acts, std::nullopt,
                 util::cat("loss.data.out.p", t));

        Match mi;
        mi.on_eth(kEthData).on_port(t);
        ActionList in_acts = data_in;
        in_acts.push_back(ActOutput{ofp::kPortLocal});
        add_rule(c, kTablePre, 700, mi, in_acts, std::nullopt,
                 util::cat("loss.data.in.p", t));
      }
      break;
    }
    case ServiceKind::kTopkSweep: {
      if (c.sketch_host) {
        // Controller-injected flow packets walk the sketch row tables
        // (counting every row's matched cell) and steer out by out_port.
        Match mf;
        mf.on_eth(kEthFlow).on_port(ofp::kPortController);
        add_rule(c, kTablePre, 710, mf, {}, c.tid_flow0, "flow.ingest");
      }
      // Flow traffic arriving over a wire was already counted at its
      // ingress sketch; every switch is a sink for it.
      Match ms;
      ms.on_eth(kEthFlow);
      add_rule(c, kTablePre, 700, ms, {ActDrop{}}, std::nullopt, "flow.sink");
      break;
    }
    case ServiceKind::kXfsm: {
      if (c.xfsm_host) {
        // Flow packets entering the host — injected on a wire port or from
        // the controller — run one machine step through the XFSM tables.
        Match mf;
        mf.on_eth(kEthFlow);
        add_rule(c, kTablePre, 710, mf, {}, c.tid_xfsm0, "xfsm.ingest");
      } else {
        // Packets the machine emitted terminate at the neighbor's LOCAL
        // port (an attached end host), where delivery is observable.
        Match ms;
        ms.on_eth(kEthFlow);
        add_rule(c, kTablePre, 700, ms, {ActOutput{ofp::kPortLocal}},
                 std::nullopt, "xfsm.sink");
      }
      break;
    }
    default:
      break;
  }

  if (opts_.probe_sink) {
    // In-band probe relay: audit probes travel hop by hop to the sink's
    // LOCAL port instead of riding the controller channel.
    Match pr;
    pr.on_eth(kEthProbe);
    const PortNo route = probe_route_[c.i];
    add_rule(c, kTablePre, 9000, pr,
             {ActOutput{route == graph::kNoPort ? ofp::kPortLocal : route}},
             std::nullopt, "probe.relay");
  }

  if (opts_.data_forwarding && opts_.kind != ServiceKind::kPacketLoss &&
      opts_.kind != ServiceKind::kLoadInference) {
    // Generic background-data path for services without their own data
    // rules: controller-injected packets steer by out_port, wire arrivals
    // sink.  Keeps the hop clock advancing while faults are outstanding.
    for (PortNo t = 1; t <= c.deg; ++t) {
      Match mo;
      mo.on_eth(kEthData).on_port(ofp::kPortController);
      mo.on_tag(L.out_port().offset, L.out_port().width, t);
      add_rule(c, kTablePre, 700, mo, {ActOutput{t}}, std::nullopt,
               util::cat("data.fwd.p", t));
    }
    Match mi;
    mi.on_eth(kEthData);
    add_rule(c, kTablePre, 690, mi, {ActDrop{}}, std::nullopt, "data.sink");
  }

  if (opts_.inband_collector) {
    // Route in-band report copies toward the collector; deliver locally
    // there (the paper's "server connected to the first node").
    Match rep;
    rep.on_eth(kEthReport);
    const PortNo route = report_route_[c.i];
    add_rule(c, kTablePre, 10000, rep,
             {ActOutput{route == graph::kNoPort ? ofp::kPortLocal : route}},
             std::nullopt, "report.route");
  }

  // Catch-all: continue to the start table.
  add_rule(c, kTablePre, 0, Match{}, {}, kTableStart, "pre.continue");
}

// ---------------------------------------------------------------------------
// Table 1: pkt.start = 0 — this node becomes the DFS root (Algorithm 1
// lines 1-3).
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_start_table(Ctx& c) const {
  const TagLayout& L = *layout_;
  Match m0;
  m0.on_eth(kEthTraversal);
  m0.on_tag(L.start().offset, L.start().width, 0);

  if (opts_.kind == ServiceKind::kBlackholeCounters) {
    // Second traversal (phase2 = 1) walks the counter-check chain instead
    // of the fast-failover scan.
    Match m2 = match_tag(m0, L.phase2(), 1);
    add_rule(c, kTableStart, 110, m2, {set_field(L.start(), 1)},
             c.deg > 0 ? std::optional<TableId>(c.tid_chain) : std::nullopt,
             "start.root.phase2");
    m0 = match_tag(m0, L.phase2(), 0);
  }

  if (opts_.kind == ServiceKind::kLoadInference) {
    // Read this node's counters (the chain ends by starting the port scan).
    add_rule(c, kTableStart, 100, m0, {set_field(L.start(), 1)}, c.tid_chain,
             "start.root.load");
    add_rule(c, kTableStart, 0, Match{}, {}, kTableAux, "start.continue");
    return;
  }

  if (c.sketch_host) {
    // Sketch-hosting root: read out every cell before starting the scan.
    add_rule(c, kTableStart, 100, m0, {set_field(L.start(), 1)}, c.tid_chain,
             "start.root.topk");
    add_rule(c, kTableStart, 0, Match{}, {}, kTableAux, "start.continue");
    return;
  }

  if (opts_.kind == ServiceKind::kCriticalLink) {
    // The tested port rides in pkt.out_port; the root's scan must skip it
    // (and Finish() with a "critical" verdict if it is never confirmed).
    for (PortNo t = 1; t <= c.deg; ++t) {
      Match m = match_tag(m0, L.out_port(), t);
      add_rule(c, kTableStart, 105, m,
               {set_field(L.start(), 1), ActGroup{link_scan_group_id(1, t)}},
               std::nullopt, util::cat("start.root.linktest.p", t));
    }
  }

  ActionList acts{set_field(L.start(), 1)};
  if (opts_.kind == ServiceKind::kSnapshot) {
    acts.push_back(ActPushLabel{encode_visit(c.i, 0)});
    if (opts_.fragment_limit > 0) acts.push_back(set_field(L.rec_count(), 1));
  }
  acts.push_back(ActGroup{scan_group_id(1, 0, false)});
  add_rule(c, kTableStart, 100, m0, acts, std::nullopt, "start.root");

  add_rule(c, kTableStart, 0, Match{}, {}, kTableAux, "start.continue");
}

// ---------------------------------------------------------------------------
// Table 2: auxiliary per-service receive processing that must happen before
// classification: the blackhole "repeat" dance, the critical-node root
// checks, and the packet-loss in-counter reads.
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_aux_table(Ctx& c) const {
  const TagLayout& L = *layout_;
  Match trav;
  trav.on_eth(kEthTraversal);

  switch (opts_.kind) {
    case ServiceKind::kBlackholeCounters: {
      Match t1 = match_tag(trav, L.phase2(), 0);
      // repeat = 3: first crossing of a new link; bounce it back marked 2.
      add_rule(c, kTableAux, 300, match_tag(t1, L.repeat(), 3),
               {set_field(L.repeat(), 2), ActOutput{ofp::kPortInPort}}, std::nullopt,
               "dance.r3.bounce");
      // Receive events bump the counter TWICE: parity disambiguates "lone
      // failed send" (exactly 1) from "received a dance but never initiated
      // one" (even), which happens on links beyond the first blackhole.
      for (PortNo t = 1; t <= c.deg; ++t) {
        const ActGroup ctr{counter_group_id(kFamBlackhole, t)};
        // repeat = 2: our own probe came back; count the receive, resend.
        Match r2 = match_tag(t1, L.repeat(), 2);
        r2.on_port(t);
        add_rule(c, kTableAux, 290, r2,
                 {ctr, ctr, set_field(L.repeat(), 1), ActOutput{ofp::kPortInPort}},
                 std::nullopt, util::cat("dance.r2.p", t));
        // repeat = 1: dance complete; count, restore repeat, process.
        Match r1 = match_tag(t1, L.repeat(), 1);
        r1.on_port(t);
        add_rule(c, kTableAux, 280, r1, {ctr, ctr, set_field(L.repeat(), 3)},
                 c.tid_classify, util::cat("dance.r1.p", t));
      }
      break;
    }
    case ServiceKind::kCritical: {
      // Root-only (par_i = 0) checks on pkt.toParent (Table 1, critical
      // column): an arrival flagged toParent while cur != firstPort means a
      // second node chose the root as its parent => the root is critical.
      Match base = match_tag(match_tag(trav, L.to_parent(), 1), L.par(c.i), 0);
      for (PortNo cv = 1; cv <= c.deg; ++cv) {
        for (PortNo f = 1; f <= c.deg; ++f) {
          Match m = match_tag(match_tag(base, L.cur(c.i), cv), L.first_port(), f);
          if (cv == f) {
            add_rule(c, kTableAux, 290, m, {set_field(L.to_parent(), 0)},
                     c.tid_classify, util::cat("crit.firstret.c", cv));
          } else {
            ActionList acts = report_actions(c.i, kReasonCritTrue);
            acts.push_back(ActDrop{});
            add_rule(c, kTableAux, 300, m, acts, std::nullopt,
                     util::cat("crit.true.c", cv, ".f", f));
          }
        }
      }
      break;
    }
    case ServiceKind::kCriticalLink: {
      // Root only (par = 0 but cur != 0 — a started root, never a fresh
      // node): any arrival on the tested port proves the far end is
      // reachable without the tested link.
      for (PortNo p = 1; p <= c.deg; ++p) {
        for (PortNo cv = 1; cv <= c.deg; ++cv) {
          Match m = match_tag(match_tag(match_tag(trav, L.out_port(), p),
                                        L.par(c.i), 0),
                              L.cur(c.i), cv);
          m.on_port(p);
          ActionList acts = report_actions(c.i, kReasonLinkNotCritical);
          acts.push_back(ActDrop{});
          add_rule(c, kTableAux, 300, m, acts, std::nullopt,
                   util::cat("linktest.confirm.p", p, ".c", cv));
        }
      }
      break;
    }
    case ServiceKind::kPacketLoss: {
      // Read this side's in-counter into scratch_b, remember the in-port in
      // out_port (for the report), then compare against the sender's
      // scratch_a in the compare chain.
      for (PortNo t = 1; t <= c.deg; ++t) {
        Match m = trav;
        m.on_port(t);
        ActionList acts{set_field(L.out_port(), t)};
        for (std::size_t k = 0; k < opts_.loss_moduli.size(); ++k)
          acts.push_back(ActGroup{counter_group_id(kFamLossIn0 + k, t)});
        add_rule(c, kTableAux, 300, m, acts, c.tid_cmp0,
                 util::cat("loss.trav.in.p", t));
      }
      break;
    }
    default:
      break;
  }

  add_rule(c, kTableAux, 0, Match{}, {}, c.tid_classify, "aux.continue");
}

// ---------------------------------------------------------------------------
// Classify table: Algorithm 1 lines 5-10 as enumerated match-action rules.
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_classify_table(Ctx& c) const {
  const TagLayout& L = *layout_;
  const NodeId i = c.i;
  const bool bh = opts_.kind == ServiceKind::kBlackholeCounters;
  const bool snap = opts_.kind == ServiceKind::kSnapshot;
  const bool prio_svc = opts_.kind == ServiceKind::kPriocast;
  const TableId tid = c.tid_classify;

  Match trav;
  trav.on_eth(kEthTraversal);

  auto chain_next = [&](PortNo q) -> TableId {
    return q <= c.deg ? static_cast<TableId>(c.tid_chain + 2 * (q - 1))
                      : static_cast<TableId>(c.tid_chain + 2 * c.deg);
  };

  // --- First_visit: cur_i = 0, arrival port becomes the parent. ---
  for (PortNo p = 1; p <= c.deg; ++p) {
    Match base = match_tag(trav, L.cur(i), 0);
    base.on_port(p);

    if (bh) {
      // Phase 1 (dance already counted the receive).
      Match m1 = match_tag(base, L.phase2(), 0);
      add_rule(c, tid, kPrioFirstVisit, m1,
               {set_field(L.par(i), p), ActGroup{scan_group_id(1, p, false)}},
               std::nullopt, util::cat("first.p", p));
      // Phase 2: record parent, walk the counter-check chain from port 1.
      Match m2 = match_tag(base, L.phase2(), 1);
      add_rule(c, tid, kPrioFirstVisit, m2, {set_field(L.par(i), p)}, chain_next(1),
               util::cat("first.ph2.p", p));
      continue;
    }

    if (opts_.kind == ServiceKind::kLoadInference) {
      add_rule(c, tid, kPrioFirstVisit, base, {set_field(L.par(i), p)}, c.tid_chain,
               util::cat("first.load.p", p));
      continue;
    }

    if (c.sketch_host) {
      add_rule(c, tid, kPrioFirstVisit, base, {set_field(L.par(i), p)}, c.tid_chain,
               util::cat("first.topk.p", p));
      continue;
    }

    if (snap && opts_.fragment_limit > 0) {
      const std::uint32_t lim = opts_.fragment_limit;
      for (std::uint32_t j = 1; j < lim; ++j) {
        Match m = match_tag(base, L.rec_count(), j);
        add_rule(c, tid, kPrioFirstVisit, m,
                 {set_field(L.par(i), p), ActPushLabel{encode_visit(i, p)},
                  set_field(L.rec_count(), j + 1), ActGroup{scan_group_id(1, p, false)}},
                 std::nullopt, util::cat("first.p", p, ".rec", j));
      }
      // Fragment full: flush the record stack to the collector first.
      Match m = match_tag(base, L.rec_count(), lim);
      ActionList flush = report_actions(i, kReasonSnapshotFragment);
      for (auto& a : ActionList{ActClearLabels{}, set_field(L.par(i), p),
                                ActPushLabel{encode_visit(i, p)},
                                set_field(L.rec_count(), 1),
                                ActGroup{scan_group_id(1, p, false)}})
        flush.push_back(a);
      add_rule(c, tid, kPrioFirstVisit, m, flush, std::nullopt,
               util::cat("first.p", p, ".flush"));
      continue;
    }

    ActionList acts{set_field(L.par(i), p)};
    if (snap) acts.push_back(ActPushLabel{encode_visit(i, p)});
    acts.push_back(ActGroup{scan_group_id(1, p, false)});
    add_rule(c, tid, kPrioFirstVisit, base, acts, std::nullopt,
             util::cat("first.p", p));
  }

  // --- Priocast phase switch: non-root nodes detect the second traversal
  // when a packet arrives from their parent while cur = par. ---
  if (prio_svc) {
    for (PortNo p = 1; p <= c.deg; ++p) {
      Match m = match_tag(match_tag(match_tag(trav, L.start(), 2), L.par(i), p),
                          L.cur(i), p);
      m.on_port(p);
      add_rule(c, tid, kPrioRestart, m, {ActGroup{scan_group_id(1, p, false)}},
               std::nullopt, util::cat("prio.restart.p", p));
    }
  }

  // --- Visit_from_cur: in = cur — advance to the next port. ---
  for (PortNo p = 1; p <= c.deg; ++p) {
    if (bh) {
      // Phase 2 needs no parent enumeration: the chain tables skip the
      // parent themselves.
      Match m2 = match_tag(match_tag(trav, L.phase2(), 1), L.cur(i), p);
      m2.on_port(p);
      add_rule(c, tid, kPrioFromCur, m2, {}, chain_next(p + 1),
               util::cat("fromcur.ph2.p", p));
    }
    for (PortNo q = 0; q <= c.deg; ++q) {
      Match m = match_tag(match_tag(trav, L.cur(i), p), L.par(i), q);
      m.on_port(p);
      ActionList acts;
      if (bh) {
        m = match_tag(m, L.phase2(), 0);
        // Receive count (twice — see the parity note in emit_aux_table).
        acts.push_back(ActGroup{counter_group_id(kFamBlackhole, p)});
        acts.push_back(ActGroup{counter_group_id(kFamBlackhole, p)});
      }
      if (opts_.kind == ServiceKind::kCritical)
        acts.push_back(set_field(L.to_parent(), 0));
      if (opts_.kind == ServiceKind::kCriticalLink && q == 0) {
        // Root advance: keep excluding the tested port.
        for (PortNo t = 1; t <= c.deg; ++t) {
          Match mt = match_tag(m, L.out_port(), t);
          add_rule(c, tid, kPrioFromCur + 10, mt,
                   {ActGroup{link_scan_group_id(p + 1, t)}}, std::nullopt,
                   util::cat("fromcur.p", p, ".linktest.t", t));
        }
        // Fall through to the generic rule as a backstop (out_port = 0
        // cannot occur in a well-formed query).
      }
      if (prio_svc && q == 0) {
        // Root: phase decides which finish variant the scan falls back to.
        Match m1 = match_tag(m, L.start(), 1);
        ActionList a1 = acts;
        a1.push_back(ActGroup{scan_group_id(p + 1, 0, false)});
        add_rule(c, tid, kPrioFromCur, m1, a1, std::nullopt,
                 util::cat("fromcur.p", p, ".root.ph1"));
        Match m2 = match_tag(m, L.start(), 2);
        ActionList a2 = acts;
        a2.push_back(ActGroup{scan_group_id(p + 1, 0, true)});
        add_rule(c, tid, kPrioFromCur, m2, a2, std::nullopt,
                 util::cat("fromcur.p", p, ".root.ph2"));
        continue;
      }
      acts.push_back(ActGroup{scan_group_id(p + 1, q, false)});
      add_rule(c, tid, kPrioFromCur, m, acts, std::nullopt,
               util::cat("fromcur.p", p, ".q", q));
    }
  }

  // --- Snapshot dedup: second crossing of a non-tree edge pops the
  // sender's OUT record (in < cur, or cur = par). ---
  if (snap && opts_.snapshot_dedup) {
    for (PortNo p = 1; p <= c.deg; ++p) {
      for (PortNo cv = 1; cv <= c.deg; ++cv) {
        if (p < cv) {
          Match m = match_tag(trav, L.cur(i), cv);
          m.on_port(p);
          add_rule(c, tid, kPrioPopLess, m, {ActPopLabel{}, ActOutput{ofp::kPortInPort}},
                   std::nullopt, util::cat("pop.lt.p", p, ".c", cv));
        }
        if (p != cv) {
          Match m = match_tag(match_tag(trav, L.cur(i), cv), L.par(i), cv);
          m.on_port(p);
          add_rule(c, tid, kPrioPopParent, m,
                   {ActPopLabel{}, ActOutput{ofp::kPortInPort}}, std::nullopt,
                   util::cat("pop.par.p", p, ".c", cv));
        }
      }
    }
  }

  // --- Visit_not_from_cur (default): bounce back where it came from. ---
  for (PortNo p = 1; p <= c.deg; ++p) {
    Match base = trav;
    base.on_port(p);
    if (bh) {
      // Post-dance first crossing (repeat = 3): clear repeat, no count.
      Match m3 = match_tag(match_tag(base, L.phase2(), 0), L.repeat(), 3);
      add_rule(c, tid, kPrioBounce, m3,
               {set_field(L.repeat(), 0), ActOutput{ofp::kPortInPort}}, std::nullopt,
               util::cat("bounce.r3.p", p));
      // Old-link arrival (repeat = 0): count the receive (twice, parity).
      Match m0 = match_tag(match_tag(base, L.phase2(), 0), L.repeat(), 0);
      const ActGroup ctr{counter_group_id(kFamBlackhole, p)};
      add_rule(c, tid, kPrioBounce, m0, {ctr, ctr, ActOutput{ofp::kPortInPort}},
               std::nullopt, util::cat("bounce.r0.p", p));
      Match m2 = match_tag(base, L.phase2(), 1);
      add_rule(c, tid, kPrioBounce, m2, {ActOutput{ofp::kPortInPort}}, std::nullopt,
               util::cat("bounce.ph2.p", p));
      continue;
    }
    ActionList acts;
    if (snap) acts.push_back(ActPushLabel{encode_bounce(i, p)});
    if (opts_.kind == ServiceKind::kBlackholeTtl) {
      acts.push_back(set_field(L.out_port(), p));
      acts.push_back(ActDecTtl{});
    }
    if (opts_.kind == ServiceKind::kPacketLoss)
      for (std::size_t k = 0; k < opts_.loss_moduli.size(); ++k)
        acts.push_back(ActGroup{counter_group_id(kFamLossOut0 + k, p)});
    acts.push_back(ActOutput{ofp::kPortInPort});
    add_rule(c, tid, kPrioBounce, base, acts, std::nullopt, util::cat("bounce.p", p));
  }
}

// ---------------------------------------------------------------------------
// Scan groups: the port-scan loop (Algorithm 1 lines 12-23) as
// FAST-FAILOVER groups Scan(s, q) = "first live port >= s, skipping parent
// q; fall back to the parent, or Finish() at the root".
// ---------------------------------------------------------------------------
ActionList TemplateCompiler::hooks_send_new(Ctx& c, PortNo out, bool root_first) const {
  const TagLayout& L = *layout_;
  ActionList a;
  switch (opts_.kind) {
    case ServiceKind::kSnapshot:
      a.push_back(ActPushLabel{encode_out(out)});
      break;
    case ServiceKind::kBlackholeCounters:
      a.push_back(ActGroup{counter_group_id(kFamBlackhole, out)});  // send count
      a.push_back(set_field(L.repeat(), 3));
      break;
    case ServiceKind::kBlackholeTtl:
      a.push_back(set_field(L.out_port(), out));
      break;
    case ServiceKind::kPacketLoss:
      for (std::size_t k = 0; k < opts_.loss_moduli.size(); ++k)
        a.push_back(ActGroup{counter_group_id(kFamLossOut0 + k, out)});
      break;
    default:
      break;
  }
  if (root_first &&
      (opts_.kind == ServiceKind::kCritical || opts_.kind == ServiceKind::kPriocast))
    a.push_back(set_field(L.first_port(), out));
  (void)c;
  return a;
}

ActionList TemplateCompiler::hooks_send_parent(Ctx& c, PortNo parent) const {
  const TagLayout& L = *layout_;
  ActionList a;
  switch (opts_.kind) {
    case ServiceKind::kSnapshot:
      a.push_back(ActPushLabel{encode_ret()});
      break;
    case ServiceKind::kCritical:
      a.push_back(set_field(L.to_parent(), 1));
      break;
    case ServiceKind::kBlackholeCounters:
      a.push_back(set_field(L.repeat(), 0));
      break;
    case ServiceKind::kBlackholeTtl:
      a.push_back(set_field(L.out_port(), parent));
      break;
    case ServiceKind::kPacketLoss:
      for (std::size_t k = 0; k < opts_.loss_moduli.size(); ++k)
        a.push_back(ActGroup{counter_group_id(kFamLossOut0 + k, parent)});
      break;
    default:
      break;
  }
  (void)c;
  return a;
}

ActionList TemplateCompiler::finish_actions(Ctx& c, bool phase2_root) const {
  const TagLayout& L = *layout_;
  switch (opts_.kind) {
    case ServiceKind::kSnapshot:
      return report_actions(c.i, kReasonFinish);
    case ServiceKind::kPriocast:
      if (!phase2_root) {
        // Phase-1 Finish(): "set start to 2 and begin a new traversal by
        // setting the next out port to the first one used" — the restart
        // group re-runs the same live-port scan, which (absent mid-run
        // failures, the paper's model) picks pkt.firstPort again.
        return {set_field(L.start(), 2), ActGroup{kRestartGroupId}};
      }
      // Phase-2 Finish(): no receiver took the packet.
      return {ActDrop{}};
    case ServiceKind::kCritical:
      return report_actions(c.i, kReasonCritFalse);
    case ServiceKind::kBlackholeTtl:
      return report_actions(c.i, kReasonFinish);
    case ServiceKind::kBlackholeCounters:
      return {ActDrop{}};  // traversal 1 ends silently; controller uses timing
    case ServiceKind::kAnycast:
    case ServiceKind::kChainedAnycast:
      return {ActDrop{}};  // no receiver reachable
    default:
      return opts_.finish_report ? report_actions(c.i, kReasonFinish)
                                 : ActionList{ActDrop{}};
  }
}

void TemplateCompiler::emit_scan_groups(Ctx& c) const {
  const TagLayout& L = *layout_;
  const bool ttl = opts_.kind == ServiceKind::kBlackholeTtl;
  const bool prio_svc = opts_.kind == ServiceKind::kPriocast;

  if (opts_.kind == ServiceKind::kCriticalLink) {
    // Root scan variants that skip the tested port; exhausting them without
    // a confirmation means the link is a bridge.
    for (PortNo s = 1; s <= c.deg + 1; ++s) {
      for (PortNo t = 1; t <= c.deg; ++t) {
        Group g;
        g.id = link_scan_group_id(s, t);
        g.type = GroupType::kFastFailover;
        g.name = util::cat("linkscan.s", s, ".t", t);
        for (PortNo q = s; q <= c.deg; ++q) {
          if (q == t) continue;
          Bucket b;
          b.watch_port = q;
          b.actions = {set_field(L.cur(c.i), q), ActOutput{q}};
          g.buckets.push_back(std::move(b));
        }
        Bucket fin;
        fin.watch_port = std::nullopt;
        fin.actions = report_actions(c.i, kReasonLinkCritical);
        g.buckets.push_back(std::move(fin));
        c.sw.groups().add(std::move(g));
      }
    }
  }

  auto build = [&](PortNo s, PortNo q, bool phase2_root) {
    Group g;
    g.id = scan_group_id(s, q, phase2_root);
    g.type = GroupType::kFastFailover;
    g.name = util::cat("scan.s", s, ".q", q, phase2_root ? ".ph2" : "");
    for (PortNo t = s; t <= c.deg; ++t) {
      if (t == q) continue;
      Bucket b;
      b.watch_port = opts_.use_fast_failover ? std::optional<PortNo>(t) : std::nullopt;
      const bool root_first = (s == 1 && q == 0 && !phase2_root);
      // Phase-2 priocast sends are plain (priorities were settled in
      // phase 1), so suppress service hooks there.
      if (!phase2_root) {
        for (auto& a : hooks_send_new(c, t, root_first)) b.actions.push_back(a);
      }
      b.actions.push_back(set_field(L.cur(c.i), t));
      if (ttl && !phase2_root) b.actions.push_back(ActDecTtl{});
      b.actions.push_back(ActOutput{t});
      g.buckets.push_back(std::move(b));
    }
    Bucket fb;  // fallback: parent, or Finish() at the root
    if (q > 0) {
      fb.watch_port = q;
      if (!phase2_root) {
        for (auto& a : hooks_send_parent(c, q)) fb.actions.push_back(a);
      }
      fb.actions.push_back(set_field(L.cur(c.i), q));
      if (ttl && !phase2_root) fb.actions.push_back(ActDecTtl{});
      fb.actions.push_back(ActOutput{q});
    } else {
      fb.watch_port = std::nullopt;  // always live: Finish()
      fb.actions = finish_actions(c, phase2_root);
    }
    g.buckets.push_back(std::move(fb));
    c.sw.groups().add(std::move(g));
  };

  for (PortNo s = 1; s <= c.deg + 1; ++s) {
    for (PortNo q = 0; q <= c.deg; ++q) build(s, q, false);
    if (prio_svc) build(s, 0, true);
  }

  if (prio_svc) {
    // Restart group: launch phase 2 from the root over the same live-port
    // scan that chose pkt.firstPort in phase 1.
    Group g;
    g.id = kRestartGroupId;
    g.type = GroupType::kFastFailover;
    g.name = "priocast.restart";
    for (PortNo t = 1; t <= c.deg; ++t) {
      Bucket b;
      b.watch_port = t;
      b.actions = {set_field(L.cur(c.i), t), ActOutput{t}};
      g.buckets.push_back(std::move(b));
    }
    c.sw.groups().add(std::move(g));
  }
}

// ---------------------------------------------------------------------------
// Smart counters: SELECT groups with round-robin bucket selection; bucket j
// writes j into the designated scratch field (fetch-and-increment mod k).
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_counters(Ctx& c) const {
  const TagLayout& L = *layout_;
  auto make_counter = [&](std::uint32_t family, PortNo port, std::uint32_t modulus,
                          FieldRef target) {
    Group g;
    g.id = counter_group_id(family, port);
    g.type = GroupType::kSelect;
    g.name = util::cat("ctr.f", family, ".p", port);
    for (std::uint32_t j = 0; j < modulus; ++j)
      g.buckets.push_back(Bucket{{set_field(target, j)}, std::nullopt});
    c.sw.groups().add(std::move(g));
  };

  if (opts_.kind == ServiceKind::kBlackholeCounters) {
    for (PortNo t = 1; t <= c.deg; ++t)
      make_counter(kFamBlackhole, t, opts_.counter_modulus, L.scratch_a(0));
  }
  if (opts_.kind == ServiceKind::kPacketLoss ||
      opts_.kind == ServiceKind::kLoadInference) {
    for (PortNo t = 1; t <= c.deg; ++t) {
      for (std::size_t k = 0; k < opts_.loss_moduli.size(); ++k) {
        make_counter(kFamLossOut0 + k, t, opts_.loss_moduli[k], L.scratch_a(k));
        make_counter(kFamLossIn0 + k, t, opts_.loss_moduli[k], L.scratch_b(k));
      }
    }
  }
  if (c.sketch_host && opts_.kind == ServiceKind::kTopkSweep) {
    // One CRT counter bank per sketch cell; the group-id "port" slot
    // carries the cell index.
    for (std::uint32_t j = 0; j < c.topk_cells; ++j)
      for (std::uint32_t m = 0; m < opts_.topk_moduli.size(); ++m)
        make_counter(kFamTopk0 + m, j, opts_.topk_moduli[m], topk_scratch(L, m));
  }
  if (opts_.kind == ServiceKind::kXfsm && c.xfsm_host) {
    // Guard banks (the "port" slot carries the bank index) and, when the
    // machine counts occupancy, one enter + one exit bank per state label.
    const XfsmProgram& P = opts_.xfsm;
    for (std::uint32_t m = 0; m < opts_.xfsm_moduli.size(); ++m) {
      const std::uint32_t mod = opts_.xfsm_moduli[m];
      for (std::uint32_t b = 0; b < P.guard_banks; ++b)
        make_counter(kFamXfsmGuard0 + m, b, mod, topk_scratch(L, m));
      if (P.count_occupancy) {
        for (std::uint32_t s = 0; s < P.num_states; ++s) {
          make_counter(kFamXfsmEnter0 + m, s, mod, topk_scratch(L, m));
          make_counter(kFamXfsmExit0 + m, s, mod, topk_scratch(L, m));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blackhole phase 2: unrolled "check counter before crossing" chain.
// try(q):  skip if q is the parent; else fetch-and-increment C_q.
// chk(q):  1 => report blackhole at (this switch, q) and skip;
//          0 => unreached in traversal 1, skip;
//          else => healthy, cross.
// exhaust: all ports done; return to the parent (or stop at the root).
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_phase2_chain(Ctx& c) const {
  const TagLayout& L = *layout_;
  auto tid_try = [&](PortNo q) { return static_cast<TableId>(c.tid_chain + 2 * (q - 1)); };
  auto tid_chk = [&](PortNo q) { return static_cast<TableId>(c.tid_chain + 2 * (q - 1) + 1); };
  const TableId tid_exhaust = static_cast<TableId>(c.tid_chain + 2 * c.deg);
  auto next_of = [&](PortNo q) {
    return q + 1 <= c.deg ? tid_try(q + 1) : tid_exhaust;
  };

  for (PortNo q = 1; q <= c.deg; ++q) {
    add_rule(c, tid_try(q), 10, match_tag(Match{}, L.par(c.i), q), {}, next_of(q),
             util::cat("try.p", q, ".skip_parent"));
    add_rule(c, tid_try(q), 0, Match{},
             {ActGroup{counter_group_id(kFamBlackhole, q)}}, tid_chk(q),
             util::cat("try.p", q, ".fetch"));

    if (opts_.inband_collector) {
      // The static report route may coincide with the dead port being
      // reported (the reporter is adjacent to it by construction).  Send
      // the report back through the arrival port instead — the phase-2
      // packet just crossed it, so it is live — and let the next switch's
      // distance-monotone route rules take over (they can never point
      // back through this node).
      for (PortNo in_p = 1; in_p <= c.deg; ++in_p) {
        Match m = match_tag(Match{}, L.scratch_a(0), 1);
        m.on_port(in_p);
        ActionList acts{set_field(L.out_port(), q)};
        for (auto& a : report_actions(c.i, kReasonBlackholePort, in_p))
          acts.push_back(a);
        add_rule(c, tid_chk(q), 11, m, acts, next_of(q),
                 util::cat("chk.p", q, ".blackhole.in", in_p));
      }
    }
    ActionList bh_report{set_field(L.out_port(), q)};
    for (auto& a : report_actions(c.i, kReasonBlackholePort)) bh_report.push_back(a);
    add_rule(c, tid_chk(q), 10, match_tag(Match{}, L.scratch_a(0), 1), bh_report,
             next_of(q), util::cat("chk.p", q, ".blackhole"));
    add_rule(c, tid_chk(q), 9, match_tag(Match{}, L.scratch_a(0), 0), {}, next_of(q),
             util::cat("chk.p", q, ".unreached"));
    add_rule(c, tid_chk(q), 0, Match{},
             {set_field(L.cur(c.i), q), ActOutput{q}}, std::nullopt,
             util::cat("chk.p", q, ".cross"));
  }

  for (PortNo t = 1; t <= c.deg; ++t)
    add_rule(c, tid_exhaust, 10, match_tag(Match{}, L.par(c.i), t),
             {set_field(L.cur(c.i), t), ActOutput{t}}, std::nullopt,
             util::cat("exhaust.to_parent.p", t));
  add_rule(c, tid_exhaust, 0, match_tag(Match{}, L.par(c.i), 0), {ActDrop{}},
           std::nullopt, "exhaust.root_done");
}

// ---------------------------------------------------------------------------
// Packet-loss compare chain: the traversal packet carries the sender's
// out-counter read-outs (scratch_a*); this side just read its in-counters
// (scratch_b*).  All-equal => continue silently; any mismatch => report.
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_loss_chain(Ctx& c) const {
  const TagLayout& L = *layout_;
  const auto K = opts_.loss_moduli.size();
  for (std::size_t k = 0; k < K; ++k) {
    const TableId tid = static_cast<TableId>(c.tid_cmp0 + k);
    const TableId next = static_cast<TableId>(k + 1 < K ? tid + 1 : c.tid_classify);
    for (std::uint32_t j = 0; j < opts_.loss_moduli[k]; ++j) {
      Match m = match_tag(match_tag(Match{}, L.scratch_a(k), j), L.scratch_b(k), j);
      add_rule(c, tid, 10, m, {}, next, util::cat("cmp.m", k, ".eq", j));
    }
    add_rule(c, tid, 0, Match{}, report_actions(c.i, kReasonLossDetected),
             c.tid_classify, util::cat("cmp.m", k, ".mismatch"));
  }
}

// ---------------------------------------------------------------------------
// Load inference (§4 extension): at every first visit, walk a read chain
// that fetches each port's per-direction traffic counters and records the
// residues as labels.  The chain's exhaust table resumes the traversal.
// Reads return the PRE-increment value, so the recorded residues are exact;
// each counter is read exactly once per traversal.
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_load_chain(Ctx& c) const {
  const TagLayout& L = *layout_;
  const auto K = static_cast<std::uint32_t>(opts_.loss_moduli.size());
  // Unit u = (q-1)*2K + dir*K + k; tables: read = tid_chain + 2u, push = +1.
  const std::uint32_t units = c.deg * 2 * K;
  auto tid_read = [&](std::uint32_t u) {
    return static_cast<TableId>(c.tid_chain + 2 * u);
  };
  const TableId tid_exhaust = static_cast<TableId>(c.tid_chain + 2 * units);

  for (std::uint32_t u = 0; u < units; ++u) {
    const PortNo q = 1 + u / (2 * K);
    const bool ingress = ((u / K) % 2) != 0;
    const std::uint32_t k = u % K;
    const std::uint32_t fam = (ingress ? kFamLossIn0 : kFamLossOut0) + k;
    const FieldRef scratch = ingress ? L.scratch_b(k) : L.scratch_a(k);
    const TableId next = u + 1 < units ? tid_read(u + 1) : tid_exhaust;

    add_rule(c, tid_read(u), 0, Match{}, {ActGroup{counter_group_id(fam, q)}},
             static_cast<TableId>(tid_read(u) + 1),
             util::cat("load.read.p", q, ingress ? ".in" : ".out", ".m", k));
    for (std::uint32_t j = 0; j < opts_.loss_moduli[k]; ++j) {
      add_rule(c, static_cast<TableId>(tid_read(u) + 1), 10,
               match_tag(Match{}, scratch, j),
               {ActPushLabel{encode_load(ingress, k, c.i, q, j)}}, next,
               util::cat("load.push.p", q, ".m", k, ".v", j));
    }
  }

  // Exhaust: resume the traversal with the standard out <- 1 scan.
  for (PortNo t = 0; t <= c.deg; ++t)
    add_rule(c, tid_exhaust, 10, match_tag(Match{}, L.par(c.i), t),
             {ActGroup{scan_group_id(1, t, false)}}, std::nullopt,
             util::cat("load.resume.par", t));
}

// ---------------------------------------------------------------------------
// Top-K read-out chain: at every first visit of a sketch host, walk one
// table per cell.  Each table holds a single rule whose action list fuses
// the read and the record for all K moduli: the SELECT group writes the
// residue into a scratch register (fetch-and-increment mod m, returning the
// PRE-increment value), and the push-field action copies it onto the label
// stack under the (modulus, node, cell) framing bits.  The exhaust table
// flushes the switch's read-out as one report fragment, clears the stack
// (bounding the sweep packet's wire size to one switch's records) and
// resumes the standard port scan.
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_topk_chain(Ctx& c) const {
  const TagLayout& L = *layout_;
  const auto K = static_cast<std::uint32_t>(opts_.topk_moduli.size());
  const TableId tid_exhaust = static_cast<TableId>(c.tid_chain + c.topk_cells);

  for (std::uint32_t j = 0; j < c.topk_cells; ++j) {
    ActionList acts;
    for (std::uint32_t m = 0; m < K; ++m) {
      const FieldRef s = topk_scratch(L, m);
      acts.push_back(ActGroup{counter_group_id(kFamTopk0 + m, j)});
      acts.push_back(ActPushTagField{s.offset, s.width, encode_topk_base(m, c.i, j)});
    }
    add_rule(c, static_cast<TableId>(c.tid_chain + j), 0, Match{}, acts,
             static_cast<TableId>(c.tid_chain + j + 1), util::cat("topk.read.c", j));
  }

  for (PortNo t = 0; t <= c.deg; ++t) {
    ActionList acts = report_actions(c.i, kReasonTopkFragment);
    acts.push_back(ActClearLabels{});
    acts.push_back(ActGroup{scan_group_id(1, t, false)});
    add_rule(c, tid_exhaust, 10, match_tag(Match{}, L.par(c.i), t), acts,
             std::nullopt, util::cat("topk.resume.par", t));
  }
}

// ---------------------------------------------------------------------------
// Sketch row tables: the count-min update as plain match-action rules.  Row
// r matches the r-th bit-slice of the flow-key tag field (the per-row hash)
// and increments that cell's CRT counter bank; the egress table then steers
// the counted packet out by the out_port tag, to sink at the neighbor.
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_topk_flow_tables(Ctx& c) const {
  const TagLayout& L = *layout_;
  const std::uint32_t b = opts_.topk_row_bits;
  const std::uint32_t w = 1u << b;
  const FieldRef fkey = L.flow_key();

  for (std::uint32_t r = 0; r < opts_.topk_rows; ++r) {
    const TableId tid = static_cast<TableId>(c.tid_flow0 + r);
    for (std::uint32_t v = 0; v < w; ++v) {
      Match m;
      m.on_tag(fkey.offset + r * b, b, v);
      ActionList acts;
      for (std::uint32_t k = 0; k < opts_.topk_moduli.size(); ++k)
        acts.push_back(ActGroup{counter_group_id(kFamTopk0 + k, r * w + v)});
      add_rule(c, tid, 10, m, acts, static_cast<TableId>(tid + 1),
               util::cat("sketch.row", r, ".v", v));
    }
  }

  // Signature rows: same shape, sliced from the flow_sig field, cells
  // stacked after the slice rows'.
  for (std::uint32_t s = 0; s < opts_.topk_sig_rows; ++s) {
    const std::uint32_t r = opts_.topk_rows + s;
    const TableId tid = static_cast<TableId>(c.tid_flow0 + r);
    const FieldRef sig = L.flow_sig();
    for (std::uint32_t v = 0; v < w; ++v) {
      Match m;
      m.on_tag(sig.offset + s * b, b, v);
      ActionList acts;
      for (std::uint32_t k = 0; k < opts_.topk_moduli.size(); ++k)
        acts.push_back(ActGroup{counter_group_id(kFamTopk0 + k, r * w + v)});
      add_rule(c, tid, 10, m, acts, static_cast<TableId>(tid + 1),
               util::cat("sketch.sig", s, ".v", v));
    }
  }

  const TableId tid_out = static_cast<TableId>(c.tid_flow0 + opts_.topk_rows +
                                               opts_.topk_sig_rows);
  for (PortNo t = 1; t <= c.deg; ++t)
    add_rule(c, tid_out, 10, match_tag(Match{}, L.out_port(), t), {ActOutput{t}},
             std::nullopt, util::cat("flow.out.p", t));
}

// ---------------------------------------------------------------------------
// XFSM read-out chain: at every first visit of a host, walk one table per
// counter bank — guard banks plus (when the machine counts occupancy) one
// enter and one exit bank per state label — fusing the fetch-and-increment
// and the label push per modulus, exactly like the top-K cell read-out.
// The exhaust table flushes the host's records as one report fragment,
// clears the stack and resumes the port scan.  Because reading increments,
// sweep j observes j-1 extra counts on every bank; the decoder subtracts
// them (xfsm::XfsmService::decode_sweep).
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_xfsm_chain(Ctx& c) const {
  const TagLayout& L = *layout_;
  const XfsmProgram& P = opts_.xfsm;
  const auto K = static_cast<std::uint32_t>(opts_.xfsm_moduli.size());
  const TableId tid_exhaust = static_cast<TableId>(c.tid_chain + c.xfsm_units);

  // Unit order: enter(0..S-1), exit(0..S-1), guard(0..G-1).
  const std::uint32_t occ = P.count_occupancy ? P.num_states : 0;
  for (std::uint32_t u = 0; u < c.xfsm_units; ++u) {
    std::uint32_t fam0, kind, idx;
    if (u < occ) {
      fam0 = kFamXfsmEnter0, kind = kXfsmBankEnter, idx = u;
    } else if (u < 2 * occ) {
      fam0 = kFamXfsmExit0, kind = kXfsmBankExit, idx = u - occ;
    } else {
      fam0 = kFamXfsmGuard0, kind = kXfsmBankGuard, idx = u - 2 * occ;
    }
    ActionList acts;
    for (std::uint32_t m = 0; m < K; ++m) {
      const FieldRef s = topk_scratch(L, m);
      acts.push_back(ActGroup{counter_group_id(fam0 + m, idx)});
      acts.push_back(
          ActPushTagField{s.offset, s.width, encode_xfsm_base(m, c.i, kind, idx)});
    }
    add_rule(c, static_cast<TableId>(c.tid_chain + u), 0, Match{}, acts,
             static_cast<TableId>(c.tid_chain + u + 1),
             util::cat("xfsm.read.k", kind, ".i", idx));
  }

  for (PortNo t = 0; t <= c.deg; ++t) {
    ActionList acts = report_actions(c.i, kReasonXfsmFragment);
    acts.push_back(ActClearLabels{});
    acts.push_back(ActGroup{scan_group_id(1, t, false)});
    add_rule(c, tid_exhaust, 10, match_tag(Match{}, L.par(c.i), t), acts,
             std::nullopt, util::cat("xfsm.resume.par", t));
  }
}

// ---------------------------------------------------------------------------
// XFSM machine tables (hosts only), in goto order:
//
//   load       capture the arrival port into xfsm_event (when configured)
//              and ActLoadState the lookup-scope key into xfsm_state
//   trans      one rule per XfsmTransition, priority by program order; the
//              arm actions rewrite xfsm_state in band, ActStoreState it
//              back under the update-scope key, and forward.  Guarded rows
//              instead fetch-and-increment their guard bank (all moduli)
//              and branch in a per-row check table
//   gchk[r]    modulus-0 residue == pass_residue => pass arm, else fail arm
//   out        kOutTag arms land here: steer by the out_port tag
// ---------------------------------------------------------------------------
void TemplateCompiler::emit_xfsm_tables(Ctx& c) const {
  const TagLayout& L = *layout_;
  const XfsmProgram& P = opts_.xfsm;
  const auto K = static_cast<std::uint32_t>(opts_.xfsm_moduli.size());
  const FieldRef st = L.xfsm_state();

  const TableId tid_load = c.tid_xfsm0;
  const TableId tid_trans = static_cast<TableId>(tid_load + 1);
  std::uint32_t guarded = 0;
  for (const XfsmTransition& t : P.transitions) guarded += t.guard ? 1 : 0;
  const TableId tid_gchk0 = static_cast<TableId>(tid_trans + 1);
  const TableId tid_out = static_cast<TableId>(tid_gchk0 + guarded);

  auto scope_field = [&](XfsmScope s) {
    return s == XfsmScope::kFlowKey ? L.flow_key() : L.xfsm_aux();
  };
  const FieldRef lookup_key = scope_field(P.lookup_scope);
  const FieldRef update_key = scope_field(P.update_scope);
  const FieldRef store_src =
      P.store_src == XfsmStoreSrc::kState ? st : L.xfsm_event();
  const ActLoadState load{lookup_key.offset, lookup_key.width, st.offset,
                          st.width, 0};

  if (P.event_from_in_port) {
    const FieldRef ev = L.xfsm_event();
    for (PortNo p = 1; p <= c.deg; ++p) {
      Match m;
      m.on_port(p);
      add_rule(c, tid_load, 10, m, {set_field(ev, p), load}, tid_trans,
               util::cat("xfsm.load.p", p));
    }
  } else {
    add_rule(c, tid_load, 0, Match{}, {load}, tid_trans, "xfsm.load");
  }

  // Arm lowering: occupancy banks fire only on a statically-known state
  // change; the in-band rewrite of xfsm_state happens before the store so
  // the written value is the POST-transition state.
  auto arm_actions = [&](const XfsmTransition& t, const XfsmArm& arm) {
    ActionList acts;
    const bool changes = arm.next >= 0 &&
                         static_cast<std::uint32_t>(arm.next) != t.state;
    if (P.count_occupancy && changes && t.update) {
      for (std::uint32_t m = 0; m < K; ++m) {
        acts.push_back(ActGroup{counter_group_id(
            kFamXfsmEnter0 + m, static_cast<std::uint32_t>(arm.next))});
        acts.push_back(ActGroup{counter_group_id(kFamXfsmExit0 + m, t.state)});
      }
    }
    if (changes) acts.push_back(set_field(st, static_cast<std::uint64_t>(arm.next)));
    if (t.update)
      acts.push_back(ActStoreState{update_key.offset, update_key.width,
                                   store_src.offset, store_src.width});
    std::optional<TableId> goto_t;
    switch (arm.act) {
      case XfsmActKind::kDrop:
        acts.push_back(ActDrop{});
        break;
      case XfsmActKind::kOutPort:
        acts.push_back(ActOutput{arm.out_port});
        break;
      case XfsmActKind::kOutTag:
        goto_t = tid_out;
        break;
      case XfsmActKind::kFloodExceptIn:
        for (PortNo q = 1; q <= c.deg; ++q)
          if (q != static_cast<PortNo>(t.in_port)) acts.push_back(ActOutput{q});
        break;
    }
    return std::pair<ActionList, std::optional<TableId>>{std::move(acts), goto_t};
  };

  std::uint32_t gchk = 0;
  for (std::size_t r = 0; r < P.transitions.size(); ++r) {
    const XfsmTransition& t = P.transitions[r];
    Match m = match_tag(Match{}, st, t.state);
    if (t.in_port >= 0) m.on_port(static_cast<PortNo>(t.in_port));
    if (t.event >= 0)
      m = match_tag(m, L.xfsm_event(), static_cast<std::uint64_t>(t.event));
    if (t.aux >= 0)
      m = match_tag(m, L.xfsm_aux(), static_cast<std::uint64_t>(t.aux));
    const auto prio = static_cast<std::uint32_t>(4000 - r);

    if (!t.guard) {
      auto [acts, goto_t] = arm_actions(t, t.pass);
      add_rule(c, tid_trans, prio, m, std::move(acts), goto_t,
               util::cat("xfsm.t", r, ".s", t.state));
      continue;
    }

    // Guarded: fetch-and-increment the bank under every modulus, then
    // branch on the modulus-0 residue in this row's check table.
    const TableId tid_chk = static_cast<TableId>(tid_gchk0 + gchk++);
    ActionList fetch;
    for (std::uint32_t k = 0; k < K; ++k)
      fetch.push_back(ActGroup{counter_group_id(kFamXfsmGuard0 + k, t.guard->bank)});
    add_rule(c, tid_trans, prio, m, std::move(fetch), tid_chk,
             util::cat("xfsm.t", r, ".s", t.state, ".fetch"));

    auto [pass_acts, pass_goto] = arm_actions(t, t.pass);
    add_rule(c, tid_chk, 10,
             match_tag(Match{}, topk_scratch(L, 0), t.guard->pass_residue),
             std::move(pass_acts), pass_goto, util::cat("xfsm.t", r, ".pass"));
    auto [fail_acts, fail_goto] = arm_actions(t, t.fail);
    add_rule(c, tid_chk, 0, Match{}, std::move(fail_acts), fail_goto,
             util::cat("xfsm.t", r, ".fail"));
  }

  for (PortNo q = 1; q <= c.deg; ++q)
    add_rule(c, tid_out, 10, match_tag(Match{}, L.out_port(), q), {ActOutput{q}},
             std::nullopt, util::cat("xfsm.out.p", q));
}

bool set_switch_epoch(ofp::Switch& sw, std::uint32_t epoch) {
  const std::uint64_t accepted = epoch % kEpochSpace;
  std::uint64_t stale = 0;
  bool touched = false;
  for (FlowEntry& fe : sw.table(kTablePre).entries_mut()) {
    if (fe.name.rfind("epoch.stale.", 0) != 0) continue;
    if (stale == accepted) ++stale;
    fe.match.tag_matches.at(0).value = stale++;
    touched = true;
  }
  return touched;
}

std::optional<std::uint32_t> current_epoch_of(const ofp::Switch& sw) {
  if (sw.tables().size() <= kTablePre) return std::nullopt;
  bool dropped[kEpochSpace] = {};
  bool any = false;
  for (const FlowEntry& fe : sw.tables()[kTablePre].entries()) {
    if (fe.name.rfind("epoch.stale.", 0) != 0) continue;
    dropped[fe.match.tag_matches.at(0).value % kEpochSpace] = true;
    any = true;
  }
  if (!any) return std::nullopt;
  for (std::uint32_t e = 0; e < kEpochSpace; ++e)
    if (!dropped[e]) return e;
  return std::nullopt;  // malformed: every epoch dropped
}

void set_current_epoch(sim::Network& net, std::uint32_t epoch) {
  bool any = false;
  for (graph::NodeId v = 0; v < net.topology().node_count(); ++v) {
    // A switch with no guard rules (wiped by a restart, not yet repaired)
    // is skipped: there is nothing to rewrite, and the repair path brings
    // it to the current epoch explicitly via set_switch_epoch.
    if (!set_switch_epoch(net.sw(v), epoch)) continue;
    any = true;
    ++net.stats().packet_outs;  // one flow-mod per switch
  }
  if (!any)
    throw std::logic_error(
        "set_current_epoch: no epoch guard rules installed (compile with "
        "epoch_guard)");
}

}  // namespace ss::core
