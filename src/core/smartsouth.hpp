#pragma once
// Umbrella header: the full public API of the SmartSouth library.
//
//   #include "core/smartsouth.hpp"
//
// brings in the topology substrate, the OpenFlow 1.3 data-plane model, the
// discrete-event simulator, the rule compiler, and every service driver.

#include "core/compiler.hpp"    // IWYU pragma: export
#include "core/eth_types.hpp"   // IWYU pragma: export
#include "core/fields.hpp"      // IWYU pragma: export
#include "core/labels.hpp"      // IWYU pragma: export
#include "core/load_labels.hpp" // IWYU pragma: export
#include "core/monitor.hpp"     // IWYU pragma: export
#include "core/services.hpp"    // IWYU pragma: export
#include "graph/algorithms.hpp" // IWYU pragma: export
#include "graph/generators.hpp" // IWYU pragma: export
#include "graph/graph.hpp"      // IWYU pragma: export
#include "ofp/dump.hpp"         // IWYU pragma: export
#include "ofp/space.hpp"        // IWYU pragma: export
#include "ofp/switch.hpp"       // IWYU pragma: export
#include "ofp/verify.hpp"       // IWYU pragma: export
#include "ofp/wire.hpp"         // IWYU pragma: export
#include "sim/network.hpp"      // IWYU pragma: export
