#include "obs/hist.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/strings.hpp"

namespace ss::obs {

namespace {
constexpr std::uint32_t kSub = 1u << Histogram::kSubBits;  // sub-buckets / octave
}

std::uint32_t Histogram::bucket_of(std::uint64_t v) {
  if (v < 2 * kSub) return static_cast<std::uint32_t>(v);
  const std::uint32_t b = 63 - static_cast<std::uint32_t>(std::countl_zero(v));
  const std::uint32_t shift = b - kSubBits;
  return shift * kSub + static_cast<std::uint32_t>(v >> shift);
}

std::uint64_t Histogram::bucket_lo(std::uint32_t idx) {
  if (idx < 2 * kSub) return idx;
  const std::uint32_t shift = idx / kSub - 1;
  const std::uint64_t top = idx - shift * kSub;  // in [kSub, 2*kSub)
  return top << shift;
}

std::uint64_t Histogram::bucket_hi(std::uint32_t idx) {
  if (idx < 2 * kSub) return idx;
  const std::uint32_t shift = idx / kSub - 1;
  return bucket_lo(idx) + ((std::uint64_t{1} << shift) - 1);
}

void Histogram::record(std::uint64_t v, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_of(v)] += count;
  count_ += count;
  sum_ += v * count;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [idx, c] : other.buckets_) buckets_[idx] += c;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * double(count_))));
  std::uint64_t seen = 0;
  for (const auto& [idx, c] : buckets_) {
    seen += c;
    if (seen >= rank)
      return std::clamp(bucket_hi(idx), min(), max_);
  }
  return max_;
}

std::string Histogram::to_json(std::string_view name) const {
  JsonArr buckets;
  for (const auto& [idx, c] : buckets_)
    buckets.push_raw(JsonArr().push(idx).push(c).str());
  return JsonObj()
      .add("type", "hist")
      .add("name", name)
      .add("count", count_)
      .add("sum", sum_)
      .add("min", min())
      .add("max", max_)
      .add_raw("buckets", buckets.str())
      .str();
}

std::optional<Histogram> Histogram::from_json(const JsonValue& v) {
  if (!v.is_object() || v.str("type") != "hist") return std::nullopt;
  const JsonValue* buckets = v.get("buckets");
  if (buckets == nullptr || !buckets->is_array()) return std::nullopt;
  Histogram h;
  h.count_ = v.u64("count");
  h.sum_ = v.u64("sum");
  h.max_ = v.u64("max");
  h.min_ = h.count_ == 0 ? ~std::uint64_t{0} : v.u64("min");
  for (const JsonValue& pair : buckets->array) {
    if (!pair.is_array() || pair.array.size() != 2 ||
        !pair.array[0].is_number() || !pair.array[1].is_number())
      return std::nullopt;
    h.buckets_[static_cast<std::uint32_t>(pair.array[0].number)] +=
        static_cast<std::uint64_t>(pair.array[1].number);
  }
  return h;
}

std::string Histogram::summary() const {
  if (count_ == 0) return "count=0";
  return util::cat("count=", count_, " min=", min(), " p50=", percentile(50),
                   " p90=", percentile(90), " p99=", percentile(99),
                   " max=", max_);
}

}  // namespace ss::obs
