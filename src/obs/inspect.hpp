#pragma once
// Trace inspection: reconstruct the DFS structure of a SmartSouth traversal
// from an attributed trace (live sim::TraceEntry records or "hop" lines read
// back from a JSONL export) and flag anomalies:
//
//   * dead_end_port      — a hop that left the switch but never arrived
//                          (administratively-down link, blackhole, or loss);
//   * failover_activation— a FAST-FAILOVER group executed a bucket > 0,
//                          i.e. the preferred port was dead and the data
//                          plane routed around it (in a healthy topology
//                          every scan takes bucket 0);
//   * no_live_bucket     — a FAST-FAILOVER group found no live bucket at
//                          all (the packet was dropped in the pipeline);
//   * revisited_port     — a directed (switch, port) pair carried more than
//                          two traversal packets.  Algorithm 1 crosses tree
//                          edges once per direction and non-tree edges twice
//                          per direction, so >2 indicates a rule loop or a
//                          restarted traversal sharing the trace.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/network.hpp"

namespace ss::obs {

struct HopMatch {
  std::uint32_t table = 0;
  std::uint32_t priority = 0;
  std::uint64_t cookie = 0;
  std::string rule;
};

struct HopGroup {
  std::uint32_t group = 0;
  std::string type;  // ofp::group_type_name spelling
  std::int32_t bucket = -1;
};

/// One trace hop, format-independent (live trace or parsed JSONL).
struct HopRecord {
  std::uint64_t seq = 0;
  std::uint64_t time = 0;
  std::uint32_t from = 0;
  std::uint32_t out_port = 0;
  std::uint32_t to = 0;
  std::uint32_t in_port = 0;
  bool delivered = false;
  std::vector<HopMatch> matches;
  std::vector<HopGroup> groups;
  std::string tag_hex;
};

enum class AnomalyKind : std::uint8_t {
  kDeadEndPort,
  kFailoverActivation,
  kNoLiveBucket,
  kRevisitedPort,
};

std::string anomaly_kind_name(AnomalyKind k);

struct Anomaly {
  AnomalyKind kind;
  std::size_t hop_index;  // index into the inspected hop vector
  std::string detail;
};

struct InspectReport {
  std::vector<std::uint32_t> visit_order;  // nodes in first-arrival order
  std::vector<Anomaly> anomalies;
  std::size_t hop_count = 0;
  std::size_t delivered_count = 0;
  std::size_t failover_count = 0;  // failover_activation anomalies

  bool clean() const { return anomalies.empty(); }
};

/// Adapt one live trace entry (shared by hops_from_network and the
/// timeline's trace ingestion).
HopRecord hop_record_from(const sim::TraceEntry& te);

/// Adapt the live trace of a network.
std::vector<HopRecord> hops_from_network(const sim::Network& net);

/// Parse one JSONL line; returns false (and leaves `out` untouched) when
/// the line is valid JSON of another type or malformed.
bool hop_from_json_line(std::string_view line, HopRecord& out);

/// Reconstruct visit order + anomalies.  Hops must be in seq order (they
/// are, both live and as exported).
InspectReport inspect_hops(const std::vector<HopRecord>& hops);

}  // namespace ss::obs
