#pragma once
// Network-wide top-K flow telemetry with error-bounded sketches.
//
// Each designated sketch switch hosts a count-min sketch compiled to plain
// match-action state (ServiceKind::kTopkSweep): d row tables hash a flow by
// slicing its 24-bit key, and each cell is a bank of coprime-moduli smart
// counters (SELECT groups).  Flow packets are assigned to exactly one
// sketch by the shared first-level hash sim::flow_ingress().  One SmartSouth
// DFS traversal then sweeps the network, reading every cell of every sketch
// into the label stack (one report fragment per switch), and this module
// decodes the fragments: CRT per cell, candidate keys from the cartesian
// product of heavy row slices filtered by ingress consistency, estimates by
// min over every row — including signature rows (whole-key hash slices)
// that suppress ghost candidates — global top-K by estimate.
//
// Error bounds are the textbook count-min guarantees per sketch, over that
// sketch's packet population N_s:   estimate >= true  (always), and
// estimate <= true + eps * N_s with probability >= 1 - delta, where
// eps = e / w and delta = e^-d.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/services.hpp"
#include "obs/hist.hpp"
#include "sim/flowgen.hpp"
#include "sim/network.hpp"

namespace ss::obs {

struct TopkParams {
  /// Sketch hosts, in ingress-hash order: flow f lands on
  /// sketches[sim::flow_ingress(f.fkey, sketches.size())].
  std::vector<graph::NodeId> sketches;
  std::uint32_t rows = 4;      // count-min depth d (key-slice rows)
  std::uint32_t row_bits = 6;  // per-row hash bits b (width w = 2^b)
  /// Signature rows keyed by sim::flow_sig (whole-key hash, stamped by the
  /// injector): ghost candidates from the slice-row cartesian product hash
  /// to a light signature cell w.h.p. and fall to the noise floor.
  std::uint32_t sig_rows = 2;
  std::vector<std::uint32_t> moduli = {16, 15, 13, 11, 7};
  std::uint32_t k = 20;        // flows to report
  /// Heavy row slices considered per row when recovering candidate keys.
  std::uint32_t cand_slices = 16;
  std::optional<graph::NodeId> inband_collector;

  std::uint32_t width() const { return 1u << row_bits; }
  /// Count-min guarantees for this geometry.
  double epsilon() const;
  double delta() const;
  /// CRT counting range: product of the moduli.
  std::uint64_t range() const;
};

struct FlowEstimate {
  std::uint32_t fkey = 0;
  std::uint64_t estimate = 0;       // min-over-rows, read-adjusted
  graph::NodeId sketch = 0;         // host the flow was counted on
};

struct TopkResult {
  std::vector<FlowEstimate> top;    // sorted by (estimate desc, fkey asc)
  bool complete = false;            // root Finish() arrived
  std::size_t fragments = 0;        // per-switch read-out reports decoded
  std::size_t sketches_read = 0;    // distinct sketch hosts seen
  /// Per-sketch packet population N_s (row-0 mass) — the bound denominator.
  std::map<graph::NodeId, std::uint64_t> packets_per_sketch;
  /// Online invariant: within one sketch every row must sum to the same
  /// packet count (each packet increments each row exactly once).
  bool row_sums_consistent = true;
  core::RunStats stats;
};

/// Ground-truth comparison of one sweep's answer.
struct TopkValidation {
  double recall = 0.0;              // |reported ∩ true top-K| / K
  bool lower_bound_ok = true;       // every estimate >= true count
  bool error_bound_ok = true;       // every estimate <= true + eps * N_s
  std::uint64_t max_overestimate = 0;
  std::uint64_t worst_allowed = 0;  // largest eps * N_s over reported flows
  std::uint64_t true_topk_min = 0;  // K-th true count (the cutoff)
  std::uint64_t flows_total = 0;
  std::uint64_t packets_total = 0;
};

class TopkService {
 public:
  TopkService(const graph::Graph& g, TopkParams params);

  void install(sim::Network& net) const { compiler_.install(net); }

  /// Inject every flow's packets at its ingress sketch (steered out of a
  /// key-derived port so each packet crosses exactly one wire and sinks at
  /// the neighbor).  Batched: the event loop drains every `batch` packets.
  void pump(sim::Network& net, const std::vector<sim::FlowSpec>& flows,
            std::uint32_t batch = 65536) const;

  /// One DFS sweep from `root`: read every sketch, decode, report top-K.
  /// Non-const: each sweep's read adds one increment per cell counter, and
  /// the decoder must discount reads made by earlier sweeps.
  TopkResult sweep(sim::Network& net, graph::NodeId root);

  /// Compare a sweep's answer against the injected workload.
  TopkValidation validate(const TopkResult& r,
                          const std::vector<sim::FlowSpec>& flows) const;

  /// Per-flow packet/byte distributions of a workload (tail percentiles
  /// feed the report's telemetry section).
  static void workload_hists(const std::vector<sim::FlowSpec>& flows,
                             Histogram& packets, Histogram& bytes);

  const core::TagLayout& layout() const { return layout_; }
  const core::TemplateCompiler& compiler() const { return compiler_; }
  const TopkParams& params() const { return params_; }
  std::uint32_t sweeps_done() const { return sweeps_done_; }

 private:
  graph::Graph graph_;  // owned copy: services must outlive no one
  TopkParams params_;
  core::TagLayout layout_;
  core::TemplateCompiler compiler_;
  std::uint32_t sweeps_done_ = 0;
};

/// CRT reconstruction: the unique x in [0, prod(moduli)) with
/// x === residues[i] (mod moduli[i]).  Moduli must be pairwise coprime.
std::uint64_t crt_reconstruct(const std::vector<std::uint32_t>& residues,
                              const std::vector<std::uint32_t>& moduli);

}  // namespace ss::obs
