#include "obs/timeline.hpp"

#include <algorithm>

#include "ofp/dump.hpp"
#include "util/strings.hpp"

namespace ss::obs {

const char* tl_fault_kind_name(TlFaultKind k) {
  switch (k) {
    case TlFaultKind::kLinkDown: return "link_down";
    case TlFaultKind::kLinkUp: return "link_up";
    case TlFaultKind::kBlackholeOn: return "blackhole_on";
    case TlFaultKind::kBlackholeOff: return "blackhole_off";
    case TlFaultKind::kLossSet: return "loss";
    case TlFaultKind::kSwitchCrash: return "switch_crash";
    case TlFaultKind::kSwitchRestore: return "switch_restore";
    case TlFaultKind::kSwitchRestart: return "switch_restart";
    case TlFaultKind::kRuleCorrupt: return "rule_corrupt";
    case TlFaultKind::kHeaderCorrupt: return "header_corrupt";
    case TlFaultKind::kInject: return "inject";
    case TlFaultKind::kRelayOn: return "relay_on";
    case TlFaultKind::kRelayOff: return "relay_off";
  }
  return "?";
}

bool tl_fault_degrades(TlFaultKind k, double rate) {
  switch (k) {
    case TlFaultKind::kLinkDown:
    case TlFaultKind::kBlackholeOn:
    case TlFaultKind::kSwitchCrash:
    case TlFaultKind::kSwitchRestart:  // up, but every table is gone
    case TlFaultKind::kRuleCorrupt:
    case TlFaultKind::kHeaderCorrupt:
      return true;
    case TlFaultKind::kLossSet:
      return rate > 0.0;
    default:
      return false;
  }
}

std::string invariant_kind_name(InvariantKind k) {
  switch (k) {
    case InvariantKind::kWireConservation: return "wire_conservation";
    case InvariantKind::kCounterRegression: return "counter_regression";
    case InvariantKind::kDfsTokenFork: return "dfs_token_fork";
    case InvariantKind::kUnprovokedFailover: return "unprovoked_failover";
    case InvariantKind::kSketchBound: return "sketch_bound";
    case InvariantKind::kNoFabricatedLink: return "no_fabricated_link";
  }
  return "?";
}

Timeline::Timeline(const graph::Graph& g)
    : g_(&g),
      incident_(g.node_count()),
      edge_admin_down_(g.edge_count(), false),
      sw_crashed_(g.node_count(), false) {
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Edge& ed = g.edge(e);
    incident_[ed.a.node].push_back(e);
    incident_[ed.b.node].push_back(e);
  }
}

void Timeline::add_change(sim::Time t, const sim::NetChange& c,
                          const sim::Stats& cumulative) {
  using K = sim::NetChange::Kind;
  if (c.kind == K::kCallback) return;  // watchdog machinery, not a fault
  TlFault f;
  f.at = t;
  f.edge = c.edge;
  f.sw = c.sw;
  f.rate = c.rate;
  f.stats = cumulative;
  switch (c.kind) {
    case K::kLinkState:
      f.kind = c.flag ? TlFaultKind::kLinkUp : TlFaultKind::kLinkDown;
      f.label = util::cat(tl_fault_kind_name(f.kind), " edge=", c.edge);
      break;
    case K::kBlackhole:
      f.kind = c.flag ? TlFaultKind::kBlackholeOn : TlFaultKind::kBlackholeOff;
      f.label = util::cat(tl_fault_kind_name(f.kind), " edge=", c.edge,
                          c.both_dirs ? std::string{} : util::cat(" from=", c.sw));
      break;
    case K::kLoss:
      f.kind = TlFaultKind::kLossSet;
      f.label = util::cat("loss edge=", c.edge,
                          c.both_dirs ? std::string{} : util::cat(" from=", c.sw),
                          " rate=", c.rate);
      break;
    case K::kSwitchState:
      f.kind = c.flag ? TlFaultKind::kSwitchRestore : TlFaultKind::kSwitchCrash;
      f.label = util::cat(tl_fault_kind_name(f.kind), " switch=", c.sw);
      break;
    case K::kSwitchRestart:
      f.kind = TlFaultKind::kSwitchRestart;
      f.label = util::cat("switch_restart switch=", c.sw);
      break;
    case K::kRuleCorrupt:
      f.kind = TlFaultKind::kRuleCorrupt;
      f.label = util::cat("rule_corrupt switch=", c.sw, " salt=", c.salt);
      break;
    case K::kHeaderCorrupt:
      f.kind = TlFaultKind::kHeaderCorrupt;
      f.label = util::cat("header_corrupt off=", c.hdr_off, " width=", c.hdr_width,
                          " val=", c.hdr_val);
      break;
    case K::kInject:
      f.kind = TlFaultKind::kInject;
      f.label = util::cat("inject at=", c.sw, ":", c.port,
                          " eth=", c.packet.eth_type);
      break;
    case K::kRelay:
      f.kind = c.flag ? TlFaultKind::kRelayOn : TlFaultKind::kRelayOff;
      f.label = util::cat(tl_fault_kind_name(f.kind), " tap=", c.sw, ":", c.port,
                          "->", c.sw2, ":", c.port2);
      break;
    case K::kCallback:
      return;
  }
  faults_.push_back(std::move(f));
}

void Timeline::ingest_trace(const sim::Network& net, EpochFn epoch_of,
                            std::uint16_t traversal_eth) {
  traversal_eth_ = traversal_eth;
  trace_dropped_ = net.trace_dropped();
  hops_.reserve(hops_.size() + net.trace().size());
  for (const sim::TraceEntry& te : net.trace()) {
    hops_.push_back(hop_record_from(te));
    hop_epoch_.push_back(epoch_of ? epoch_of(te.packet) : 0u);
    hop_eth_.push_back(te.packet.eth_type);
    hop_bytes_.push_back(te.packet.wire_bytes());
  }
}

void Timeline::set_verdict(sim::Time at, std::string label) {
  verdict_at_ = at;
  verdict_label_ = std::move(label);
}

void Timeline::add_sweep(sim::Time at, std::uint32_t sweep, bool ok,
                         std::string label) {
  if (!ok)
    violate(InvariantKind::kSketchBound, at,
            util::cat("sweep ", sweep, ": ", label));
  sweeps_.push_back({at, sweep, ok, std::move(label), 0});
}

void Timeline::add_map(sim::Time at, std::uint32_t round, bool defended,
                       std::uint64_t fabricated, std::string label) {
  if (defended && fabricated > 0)
    violate(InvariantKind::kNoFabricatedLink, at,
            util::cat("round ", round, ": ", fabricated,
                      " fabricated link(s) entered a defended map (", label, ")"));
  maps_.push_back({at, round, defended, fabricated, std::move(label), 0});
}

void Timeline::violate(InvariantKind k, sim::Time t, std::string detail) {
  violations_.push_back({k, t, std::move(detail)});
}

void Timeline::check_counter_cut(const sim::Stats& cut, sim::Time t) {
  if (last_cut_) {
    const sim::Stats& p = *last_cut_;
    const auto chk = [&](const char* name, std::uint64_t prev, std::uint64_t now) {
      if (now < prev)
        violate(InvariantKind::kCounterRegression, t,
                util::cat("counter ", name, " regressed at t=", t, ": ", prev,
                          " -> ", now));
    };
    chk("sent", p.sent, cut.sent);
    chk("delivered", p.delivered, cut.delivered);
    chk("dropped_down", p.dropped_down, cut.dropped_down);
    chk("dropped_blackhole", p.dropped_blackhole, cut.dropped_blackhole);
    chk("dropped_loss", p.dropped_loss, cut.dropped_loss);
    chk("controller_msgs", p.controller_msgs, cut.controller_msgs);
    chk("packet_outs", p.packet_outs, cut.packet_outs);
    chk("max_wire_bytes", p.max_wire_bytes, cut.max_wire_bytes);
    chk("events", p.events, cut.events);
  }
  last_cut_ = cut;
}

bool Timeline::failover_provoked(std::uint32_t at_switch) const {
  if (at_switch >= incident_.size()) return false;
  for (graph::EdgeId e : incident_[at_switch]) {
    if (edge_admin_down_[e]) return true;
    const graph::Edge& ed = g_->edge(e);
    const auto peer = ed.a.node == at_switch ? ed.b.node : ed.a.node;
    if (sw_crashed_[peer]) return true;
  }
  return false;
}

bool Timeline::hop_crosses(const HopRecord& h, graph::EdgeId e) const {
  const graph::Edge& ed = g_->edge(e);
  return (h.from == ed.a.node && h.out_port == ed.a.port) ||
         (h.from == ed.b.node && h.out_port == ed.b.port);
}

void Timeline::finalize(const sim::Network& net) {
  if (finalized_) return;
  finalized_ = true;

  const std::string ff_name = ofp::group_type_name(ofp::GroupType::kFastFailover);

  // --- one ordered pass over faults + hops (faults first at equal time,
  // matching the simulator's apply-changes-then-arrivals rule) ---
  std::size_t fi = 0, hi = 0;
  std::uint64_t hop_counter = 0;      // hops processed so far
  std::uint32_t cur_epoch = 0;        // traversal token epoch
  std::optional<std::uint32_t> token_at;
  bool token_lost = false;
  bool token_seen = false;

  while (fi < faults_.size() || hi < hops_.size()) {
    const bool take_fault =
        fi < faults_.size() &&
        (hi >= hops_.size() || faults_[fi].at <= hops_[hi].time);
    if (take_fault) {
      TlFault& f = faults_[fi];
      f.at_hop = hop_counter;
      check_counter_cut(f.stats, f.at);
      switch (f.kind) {
        case TlFaultKind::kLinkDown: edge_admin_down_[f.edge] = true; break;
        case TlFaultKind::kLinkUp: edge_admin_down_[f.edge] = false; break;
        case TlFaultKind::kSwitchCrash: sw_crashed_[f.sw] = true; break;
        case TlFaultKind::kSwitchRestore: sw_crashed_[f.sw] = false; break;
        case TlFaultKind::kSwitchRestart: sw_crashed_[f.sw] = false; break;
        default: break;  // blackhole / loss keep ports live (§3.3)
      }
      if (tl_fault_degrades(f.kind, f.rate)) {
        FaultReaction r;
        r.fault_index = fi;
        reactions_.push_back(r);
      }
      events_.push_back({TimelineEvent::Kind::kFault, f.at, fi, 0});
      ++fi;
      continue;
    }

    const HopRecord& h = hops_[hi];
    const std::uint32_t epoch = hop_epoch_[hi];
    const bool traversal = traversal_eth_ != 0 && hop_eth_[hi] == traversal_eth_;

    // profiling aggregates
    wire_bytes_.record(hop_bytes_[hi]);
    tables_per_hop_.record(h.matches.size());
    ++hops_per_switch_[h.from];

    // single-DFS-token invariant (per epoch, traversal EtherType only)
    if (traversal) {
      if (epoch > cur_epoch) {
        // watchdog retry: a fresh token supersedes the old epoch entirely
        for (FaultReaction& r : reactions_) {
          if (r.epoch_after) continue;
          r.epoch_after = epoch;
          r.epoch_latency_hops = hop_counter - faults_[r.fault_index].at_hop;
        }
        events_.push_back({TimelineEvent::Kind::kEpochBump, h.time, hi, epoch});
        cur_epoch = epoch;
        token_at.reset();
        token_lost = false;
        token_seen = false;
      }
      if (epoch == cur_epoch) {
        if (token_lost) {
          violate(InvariantKind::kDfsTokenFork, h.time,
                  util::cat("hop ", h.seq, ": traversal packet departs switch ",
                            h.from, " after the epoch-", cur_epoch,
                            " token was dropped (no epoch bump)"));
        } else if (token_seen && token_at.has_value() &&
                   h.from != token_at.value_or(0)) {
          violate(InvariantKind::kDfsTokenFork, h.time,
                  util::cat("hop ", h.seq, ": token forked — departs switch ",
                            h.from, " but the epoch-", cur_epoch,
                            " token is at switch ", token_at.value_or(0)));
        }
        token_seen = true;
        if (h.delivered) {
          token_at = h.to;
          token_lost = false;
        } else {
          token_at.reset();
          token_lost = true;
        }
      }
      // epoch < cur_epoch: a stale in-flight packet from a superseded
      // attempt; the watchdog already took over, nothing to check.
      max_epoch_ = std::max(max_epoch_, epoch);
    }

    // provoked-failover invariant + fault reactions
    bool failover_here = false;
    for (const HopGroup& g : h.groups) {
      if (g.type != ff_name || g.bucket <= 0) continue;
      failover_here = true;
      if (!failover_provoked(h.from))
        violate(InvariantKind::kUnprovokedFailover, h.time,
                util::cat("hop ", h.seq, ": switch ", h.from, " group ", g.group,
                          " failed over to bucket ", g.bucket,
                          " with every incident link live"));
    }
    for (FaultReaction& r : reactions_) {
      if (r.reaction_seq) continue;
      const TlFault& f = faults_[r.fault_index];
      bool hit = false;
      std::string kind;
      if (failover_here) {
        const graph::Edge& ed = g_->edge(f.edge);
        const bool adjacent_link =
            f.kind == TlFaultKind::kLinkDown &&
            (h.from == ed.a.node || h.from == ed.b.node);
        bool adjacent_crash = false;
        if (f.kind == TlFaultKind::kSwitchCrash && h.from < incident_.size()) {
          for (graph::EdgeId e : incident_[h.from]) {
            const graph::Edge& ie = g_->edge(e);
            const auto peer = ie.a.node == h.from ? ie.b.node : ie.a.node;
            adjacent_crash = adjacent_crash || peer == f.sw;
          }
        }
        if (adjacent_link || adjacent_crash) {
          hit = true;
          kind = "failover";
        }
      }
      if (!hit && !h.delivered) {
        // Only link-scoped faults own an edge; the switch-scoped robustness
        // kinds carry edge=0 and must not claim drops crossing that edge.
        const bool link_scoped = f.kind == TlFaultKind::kLinkDown ||
                                 f.kind == TlFaultKind::kBlackholeOn ||
                                 f.kind == TlFaultKind::kLossSet;
        const bool on_edge = link_scoped && hop_crosses(h, f.edge);
        const bool into_crash =
            f.kind == TlFaultKind::kSwitchCrash && (h.to == f.sw || h.from == f.sw);
        if (on_edge || into_crash) {
          hit = true;
          kind = "wire_drop";
        }
      }
      if (hit) {
        r.reaction_seq = h.seq;
        r.reaction_kind = std::move(kind);
        r.reaction_latency_hops = hop_counter - f.at_hop + 1;
      }
    }

    events_.push_back({TimelineEvent::Kind::kHop, h.time, hi, epoch});
    ++hi;
    ++hop_counter;
  }

  // --- verdict placement + fault -> verdict latencies ---
  if (verdict_at_) {
    verdict_at_hop_ = 0;
    for (std::size_t k = 0; k < hops_.size(); ++k)
      if (hops_[k].time <= *verdict_at_) ++verdict_at_hop_;
    for (FaultReaction& r : reactions_) {
      const TlFault& f = faults_[r.fault_index];
      if (f.at <= *verdict_at_ && verdict_at_hop_ >= f.at_hop)
        r.verdict_latency_hops = verdict_at_hop_ - f.at_hop;
    }
    const auto pos = std::upper_bound(
        events_.begin(), events_.end(), *verdict_at_,
        [](sim::Time t, const TimelineEvent& ev) { return t < ev.time; });
    events_.insert(pos, {TimelineEvent::Kind::kVerdict, *verdict_at_, 0, 0});
  }

  // --- telemetry sweep marks onto the same axis (after same-time events,
  // since a sweep decodes only once its traversal's hops have landed) ---
  for (std::size_t si = 0; si < sweeps_.size(); ++si) {
    SweepMark& s = sweeps_[si];
    s.at_hop = 0;
    for (std::size_t k = 0; k < hops_.size(); ++k)
      if (hops_[k].time <= s.at) ++s.at_hop;
    const auto pos = std::upper_bound(
        events_.begin(), events_.end(), s.at,
        [](sim::Time t, const TimelineEvent& ev) { return t < ev.time; });
    events_.insert(pos, {TimelineEvent::Kind::kSweep, s.at, si, 0});
  }

  // --- discovery map marks onto the same axis (after same-time events: a
  // round's map exists only once its probes' hops have landed) ---
  for (std::size_t mi = 0; mi < maps_.size(); ++mi) {
    MapMark& m = maps_[mi];
    m.at_hop = 0;
    for (std::size_t k = 0; k < hops_.size(); ++k)
      if (hops_[k].time <= m.at) ++m.at_hop;
    const auto pos = std::upper_bound(
        events_.begin(), events_.end(), m.at,
        [](sim::Time t, const TimelineEvent& ev) { return t < ev.time; });
    events_.insert(pos, {TimelineEvent::Kind::kMap, m.at, mi, 0});
  }

  // --- final counter cut + wire conservation ---
  final_stats_ = net.stats();
  check_counter_cut(final_stats_, net.now());
  for (graph::EdgeId e = 0; e < net.link_count(); ++e) {
    for (bool ab : {true, false}) {
      const sim::WireCounters& w = net.link(e).wire(ab);
      wire_totals_.sent += w.sent;
      wire_totals_.delivered += w.delivered;
      wire_totals_.dropped_down += w.dropped_down;
      wire_totals_.dropped_blackhole += w.dropped_blackhole;
      wire_totals_.dropped_loss += w.dropped_loss;
      const std::uint64_t accounted =
          w.delivered + w.dropped_down + w.dropped_blackhole + w.dropped_loss;
      if (w.sent != accounted)
        violate(InvariantKind::kWireConservation, net.now(),
                util::cat("edge ", e, " dir ", ab ? "a->b" : "b->a", ": sent ",
                          w.sent, " != delivered ", w.delivered, " + dropped ",
                          accounted - w.delivered));
    }
  }

  // --- per-epoch structural inspection + per-attempt hop counts ---
  // Only the traversal plane is DFS-shaped; telemetry flow packets, probe
  // relays and background data bursts legitimately re-cross ports and must
  // not trip the structural anomaly rules.
  std::map<std::uint32_t, std::vector<HopRecord>> by_epoch;
  for (std::size_t k = 0; k < hops_.size(); ++k) {
    if (traversal_eth_ != 0 && hop_eth_[k] != traversal_eth_) continue;
    by_epoch[hop_epoch_[k]].push_back(hops_[k]);
  }
  for (const auto& [epoch, hops] : by_epoch) {
    hops_per_epoch_.record(hops.size());
    inspect_.emplace_back(epoch, inspect_hops(hops));
  }
}

std::vector<std::string> Timeline::anomaly_kinds() const {
  std::vector<std::string> kinds;
  for (const auto& [epoch, rep] : inspect_)
    for (const Anomaly& a : rep.anomalies) {
      const std::string name = anomaly_kind_name(a.kind);
      if (std::find(kinds.begin(), kinds.end(), name) == kinds.end())
        kinds.push_back(name);
    }
  std::sort(kinds.begin(), kinds.end());
  return kinds;
}

}  // namespace ss::obs
