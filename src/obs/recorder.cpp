#include "obs/recorder.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/export.hpp"
#include "ofp/dump.hpp"
#include "util/strings.hpp"

namespace ss::obs {

namespace {

/// Same spelling the timeline gives its faults, so fr_event labels and
/// timeline fault labels grep identically.
std::string describe_change(const sim::NetChange& c) {
  using K = sim::NetChange::Kind;
  switch (c.kind) {
    case K::kLinkState:
      return util::cat(c.flag ? "link_up" : "link_down", " edge=", c.edge);
    case K::kBlackhole:
      return util::cat(c.flag ? "blackhole_on" : "blackhole_off", " edge=", c.edge,
                       c.both_dirs ? std::string{} : util::cat(" from=", c.sw));
    case K::kLoss:
      return util::cat("loss edge=", c.edge,
                       c.both_dirs ? std::string{} : util::cat(" from=", c.sw),
                       " rate=", c.rate);
    case K::kSwitchState:
      return util::cat(c.flag ? "switch_restore" : "switch_crash", " switch=", c.sw);
    case K::kSwitchRestart:
      return util::cat("switch_restart switch=", c.sw);
    case K::kRuleCorrupt:
      return util::cat("rule_corrupt switch=", c.sw, " salt=", c.salt);
    case K::kHeaderCorrupt:
      return util::cat("header_corrupt off=", c.hdr_off, " width=", c.hdr_width,
                       " val=", c.hdr_val);
    case K::kCallback:
      return "callback";
  }
  return "?";
}

}  // namespace

void Recorder::add_counter(std::string name, Sample fn) {
  counters_[std::move(name)] = Probe{std::move(fn), 0};
}

void Recorder::add_gauge(std::string name, Sample fn) {
  gauges_[std::move(name)] = Probe{std::move(fn), 0};
}

void Recorder::attach(sim::Network& net) {
  if (attached_) throw std::logic_error("Recorder::attach called twice");
  attached_ = true;
  sim::Network* n = &net;

  // sim::Stats cumulative counters.
  add_counter("sim_sent", [n] { return n->stats().sent; });
  add_counter("sim_delivered", [n] { return n->stats().delivered; });
  add_counter("sim_dropped_down", [n] { return n->stats().dropped_down; });
  add_counter("sim_dropped_blackhole", [n] { return n->stats().dropped_blackhole; });
  add_counter("sim_dropped_loss", [n] { return n->stats().dropped_loss; });
  add_counter("sim_controller_msgs", [n] { return n->stats().controller_msgs; });
  add_counter("sim_packet_outs", [n] { return n->stats().packet_outs; });
  add_counter("sim_events", [n] { return n->stats().events; });
  add_counter("trace_dropped", [n] { return n->trace_dropped(); });

  // Omniscient aggregate wire counters over every link, both directions —
  // the per-window conservation invariant is checked on these deltas.
  const auto wire_sum = [n](std::uint64_t sim::WireCounters::* field) {
    std::uint64_t t = 0;
    for (graph::EdgeId e = 0; e < n->link_count(); ++e)
      for (const bool ab : {true, false}) t += n->link(e).wire(ab).*field;
    return t;
  };
  add_counter("wire_sent", [wire_sum] { return wire_sum(&sim::WireCounters::sent); });
  add_counter("wire_delivered",
              [wire_sum] { return wire_sum(&sim::WireCounters::delivered); });
  add_counter("wire_dropped_down",
              [wire_sum] { return wire_sum(&sim::WireCounters::dropped_down); });
  add_counter("wire_dropped_blackhole",
              [wire_sum] { return wire_sum(&sim::WireCounters::dropped_blackhole); });
  add_counter("wire_dropped_loss",
              [wire_sum] { return wire_sum(&sim::WireCounters::dropped_loss); });

  // Switch-side aggregates: rule hits, group executions, port counters.
  add_counter("flow_packets", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      for (const ofp::FlowTable& ft : n->sw(v).tables())
        for (const ofp::FlowEntry& e : ft.entries()) t += e.hit_count;
    return t;
  });
  add_counter("group_execs", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      n->sw(v).groups().for_each([&](const ofp::Group& g) { t += g.exec_count; });
    return t;
  });
  add_counter("port_rx_packets", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v) {
      const ofp::Switch& sw = n->sw(v);
      for (ofp::PortNo p = 1; p <= sw.num_ports(); ++p)
        if (sw.port_exists(p)) t += sw.port(p).rx_packets;
    }
    return t;
  });
  add_counter("port_tx_packets", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v) {
      const ofp::Switch& sw = n->sw(v);
      for (ofp::PortNo p = 1; p <= sw.num_ports(); ++p)
        if (sw.port_exists(p)) t += sw.port(p).tx_packets;
    }
    return t;
  });
  add_counter("port_tx_dropped", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v) {
      const ofp::Switch& sw = n->sw(v);
      for (ofp::PortNo p = 1; p <= sw.num_ports(); ++p)
        if (sw.port_exists(p)) t += sw.port(p).tx_dropped;
    }
    return t;
  });

  // StateTable telemetry (XFSM substrate): occupancy gauge + churn counters.
  add_counter("state_insertions", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      t += n->sw(v).state().insertions();
    return t;
  });
  add_counter("state_evictions", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      t += n->sw(v).state().evictions();
    return t;
  });
  add_counter("state_hits", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      t += n->sw(v).state().hits();
    return t;
  });
  add_counter("state_misses", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      t += n->sw(v).state().misses();
    return t;
  });
  add_gauge("state_entries", [n] {
    std::uint64_t t = 0;
    for (ofp::SwitchId v = 0; v < n->switch_count(); ++v)
      t += n->sw(v).state().size();
    return t;
  });

  // Event-queue depth gauges (the "is the run still breathing" signals).
  add_gauge("pending_arrivals", [n] { return n->pending_arrivals(); });
  add_gauge("pending_changes", [n] { return n->pending_changes(); });
  add_gauge("trace_len", [n] { return n->trace().size(); });

  net.set_tick_hook(cfg_.window_events,
                    [this](sim::Network& nn, sim::Time t) { cut_window(nn, t); });
}

void Recorder::on_change(sim::Time t, const sim::NetChange& c) {
  using K = sim::NetChange::Kind;
  if (c.kind == K::kCallback) return;  // watchdog machinery, not a fault
  flight_.push_back({t, window_, describe_change(c)});
  while (flight_.size() > cfg_.last_k) flight_.pop_front();
  // Header corruption hits in-flight packets, not a switch — no suspect.
  if (c.kind == K::kRuleCorrupt || c.kind == K::kSwitchRestart ||
      (c.kind == K::kSwitchState && !c.flag))
    suspects_.insert(c.sw);
}

void Recorder::note_sweep(bool ok, const std::string& label) {
  if (!ok) pending_.emplace_back("sketch_bound", label);
}

void Recorder::set_schedule(std::vector<std::pair<sim::Time, std::string>> sched) {
  schedule_ = std::move(sched);
}

void Recorder::alert(const std::string& kind, const std::string& detail) {
  pending_.emplace_back(kind, detail);
}

void Recorder::raise(sim::Time t, const std::string& kind, const std::string& detail) {
  JsonObj a;
  a.add("type", "alert")
      .add_u("schema_version", kStreamSchemaVersion)
      .add_u("window", window_)
      .add_u("time", t)
      .add("kind", kind)
      .add("detail", detail);
  out_ += a.str();
  out_ += "\n";
  ++alerts_total_;
}

void Recorder::cut_window(sim::Network& net, sim::Time now) {
  // 1. Sample every probe; counters yield window deltas (and a regression
  //    check), gauges yield instantaneous values.
  std::map<std::string, std::uint64_t> delta;
  std::vector<std::pair<std::string, std::string>> alerts = std::move(pending_);
  pending_.clear();
  for (auto& [name, p] : counters_) {
    const std::uint64_t cur = p.fn();
    if (cur < p.last)
      alerts.emplace_back("counter_regression",
                          util::cat(name, " regressed ", p.last, " -> ", cur));
    delta[name] = cur - p.last;  // wraps on regression; the alert is the signal
    p.last = cur;
  }

  // 2. Per-window wire conservation: Link::try_cross bumps `sent` and
  //    exactly one outcome counter in the same call, so the aggregate
  //    deltas must balance exactly at ANY sampling instant.
  const std::uint64_t accounted = delta["wire_delivered"] + delta["wire_dropped_down"] +
                                  delta["wire_dropped_blackhole"] +
                                  delta["wire_dropped_loss"];
  if (delta["wire_sent"] != accounted)
    alerts.emplace_back("wire_conservation",
                        util::cat("window sent=", delta["wire_sent"],
                                  " accounted=", accounted));

  // 3. Emit the window record, then its alerts.
  JsonObj counters;
  for (const auto& [name, d] : delta) counters.add_u(name, d);
  JsonObj gauges;
  for (auto& [name, p] : gauges_) gauges.add_u(name, p.fn());
  JsonObj w;
  w.add("type", "window")
      .add_u("schema_version", kStreamSchemaVersion)
      .add_u("window", window_)
      .add_u("t_start", window_start_)
      .add_u("t_end", now)
      .add_u("events", delta["sim_events"])
      .add_raw("counters", counters.str())
      .add_raw("gauges", gauges.str())
      .add_u("alerts", alerts.size());
  last_window_json_ = w.str();
  out_ += last_window_json_;
  out_ += "\n";
  for (const auto& [kind, detail] : alerts) raise(now, kind, detail);
  if (alerts_total_ > 0 && trip_window_json_.empty()) {
    trip_window_json_ = last_window_json_;
    trip_time_ = now;
  }

  ++window_;
  window_start_ = now;
  events_at_cut_ = net.stats().events;
}

void Recorder::finish(sim::Network& net, bool failed) {
  if (finished_) return;
  finished_ = true;
  // Final partial window (captures the tail the modulo never reached).
  if (net.stats().events > events_at_cut_ || !pending_.empty() || window_ == 0)
    cut_window(net, net.now());
  JsonObj s;
  s.add("type", "summary")
      .add_u("schema_version", kStreamSchemaVersion)
      .add_u("windows", window_)
      .add_u("alerts", alerts_total_)
      .add_u("events", net.stats().events)
      .add("failed", failed);
  out_ += s.str();
  out_ += "\n";
  if (failed || alerts_total_ > 0) make_bundle(net, failed);
}

void Recorder::make_bundle(sim::Network& net, bool failed) {
  if (trip_window_json_.empty()) {
    // Failure without an online alert (e.g. hardened-run verdict): the
    // final window is the best available snapshot of the divergence.
    trip_window_json_ = last_window_json_;
    trip_time_ = net.now();
  }
  JsonObj h;
  h.add("type", "bundle_header")
      .add_u("schema_version", kStreamSchemaVersion)
      .add_u("windows", window_)
      .add_u("alerts", alerts_total_)
      .add("failed", failed)
      .add_u("trip_time", trip_time_)
      .add_u("fr_events", flight_.size())
      .add_u("suspects", suspects_.size());
  bundle_ += h.str();
  bundle_ += "\n";

  // Last-K applied fault events, oldest first.
  for (const FlightEvent& fe : flight_) {
    JsonObj e;
    e.add("type", "fr_event")
        .add_u("schema_version", kStreamSchemaVersion)
        .add_u("time", fe.time)
        .add_u("window", fe.window)
        .add("label", fe.label);
    bundle_ += e.str();
    bundle_ += "\n";
  }

  // Probe snapshot of the window that tripped (verbatim window record).
  if (!trip_window_json_.empty()) {
    JsonObj w;
    w.add("type", "fr_window")
        .add_u("schema_version", kStreamSchemaVersion)
        .add_raw("window", trip_window_json_);
    bundle_ += w.str();
    bundle_ += "\n";
  }

  // Offending switches: full installed-state dumps, operator-readable.
  for (ofp::SwitchId sw : suspects_) {
    JsonObj d;
    d.add("type", "fr_switch")
        .add_u("schema_version", kStreamSchemaVersion)
        .add_u("switch", sw)
        .add("up", net.switch_up(sw))
        .add_u("flow_entries", net.sw(sw).total_flow_entries())
        .add_u("groups", net.sw(sw).groups().size())
        .add("dump", ofp::dump_switch(net.sw(sw)));
    bundle_ += d.str();
    bundle_ += "\n";
  }

  // Fault-schedule slice around the trip point (what was PLANNED near the
  // divergence, as opposed to the flight ring's what was APPLIED).
  if (!schedule_.empty()) {
    std::size_t pivot = 0;
    while (pivot < schedule_.size() && schedule_[pivot].first < trip_time_) ++pivot;
    const std::size_t half = cfg_.schedule_slice / 2;
    const std::size_t lo = pivot > half ? pivot - half : 0;
    const std::size_t hi = std::min(schedule_.size(), lo + cfg_.schedule_slice);
    for (std::size_t k = lo; k < hi; ++k) {
      JsonObj e;
      e.add("type", "fr_schedule")
          .add_u("schema_version", kStreamSchemaVersion)
          .add_u("time", schedule_[k].first)
          .add("label", schedule_[k].second)
          .add("applied", schedule_[k].first <= net.now());
      bundle_ += e.str();
      bundle_ += "\n";
    }
  }

  // Tail of the attributed trace, as standard "hop" lines (the same schema
  // obs_report --trace and hop_from_json_line consume).
  const std::deque<sim::TraceEntry>& tr = net.trace();
  const std::size_t start = tr.size() > cfg_.trace_tail ? tr.size() - cfg_.trace_tail : 0;
  for (std::size_t k = start; k < tr.size(); ++k) {
    bundle_ += hop_json(tr[k]);
    bundle_ += "\n";
  }
}

StreamStats read_stream(std::istream& is, std::ostream* warn) {
  StreamStats st;
  bool warned = false;
  st.jsonl = for_each_jsonl(is, [&](const JsonValue& v) {
    const std::uint64_t ver = v.u64("schema_version", 0);
    if (ver > kStreamSchemaVersion) {
      ++st.unknown_schema;
      if (warn != nullptr && !warned) {
        *warn << "warning: stream schema_version " << ver << " is newer than this "
              << "build (knows " << kStreamSchemaVersion << "); skipping such lines\n";
        warned = true;
      }
      return;
    }
    const std::string type = v.str("type");
    if (type == "window") {
      ++st.windows;
    } else if (type == "alert") {
      ++st.alerts;
    } else if (type == "summary") {
      ++st.summaries;
      st.summary_alerts = v.u64("alerts", 0);
      st.failed = v.boolean_or("failed", false);
    } else {
      ++st.other;
    }
  });
  return st;
}

}  // namespace ss::obs
