#pragma once
// Human-readable run report + Prometheus-style text snapshot, rendered from
// a finalized Timeline.  This is the "answers" end of the observability
// layer: the JSONL sidecars stay the machine interface, the report is what
// a person reads to learn what happened after the fault at sequence S and
// where the hops went.
//
// Layering: the header is a plain struct so this file needs nothing from
// scenario/ — tools/obs_report fills it from a ScenarioResult.

#include <iosfwd>
#include <string>

#include "obs/timeline.hpp"

namespace ss::obs {

/// Run identity + outcome, filled by the caller (tools/obs_report copies it
/// out of the scenario result).
struct RunHeader {
  std::string name;
  std::string topology;   // "ring" etc.
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint64_t seed = 0;
  std::uint32_t root = 0;
  std::string service;    // plain | snapshot | anycast | critical
  bool hardened = false;
  std::string verdict;    // "complete" | "incomplete"
  std::uint32_t attempts = 1;
  std::uint32_t final_epoch = 0;
  // Hardened runs: typed retry verdict (verdict / stale-verdict / exhausted)
  // distinguishing "ran out of attempts" from "only a superseded epoch ever
  // answered".  Empty on non-hardened runs.
  std::string retry_outcome;
  bool ground_truth_ok = false;
  std::string ground_truth_detail;
  // Recovery service (self-healing) outcome; meaningful when enabled.
  bool recovery_enabled = false;
  bool final_audit_clean = true;
  std::uint64_t divergences = 0;
  std::uint64_t repairs = 0;
  std::uint64_t quarantines = 0;
};

/// The full text report: run summary, causal timeline (faults, epoch bumps,
/// verdict, with hop positions), per-switch hop heatmap, histogram
/// percentiles, fault->reaction latencies, per-epoch anomalies, and the
/// invariant verdict.
void write_report(std::ostream& os, const RunHeader& h, const Timeline& tl);

/// Prometheus text exposition (gauges/counters, '#'-commented), suitable
/// for diffing or scraping: run outcome, wire totals, per-switch hop
/// counts, histogram percentiles, violation/anomaly counts.
void write_prom_snapshot(std::ostream& os, const RunHeader& h, const Timeline& tl);

}  // namespace ss::obs
