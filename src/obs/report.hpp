#pragma once
// Human-readable run report + Prometheus-style text snapshot, rendered from
// a finalized Timeline.  This is the "answers" end of the observability
// layer: the JSONL sidecars stay the machine interface, the report is what
// a person reads to learn what happened after the fault at sequence S and
// where the hops went.
//
// Layering: the header is a plain struct so this file needs nothing from
// scenario/ — tools/obs_report fills it from a ScenarioResult.

#include <iosfwd>
#include <string>

#include "obs/timeline.hpp"

namespace ss::obs {

/// Top-K telemetry outcome (filled when the run carried sketch sweeps);
/// the tail percentiles are the per-flow packet/byte distributions of the
/// injected workload, the bounds are the count-min guarantees.
struct TopkReportSection {
  bool enabled = false;
  std::uint32_t k = 0;
  double epsilon = 0.0;
  double delta = 0.0;
  std::uint64_t range = 0;        // CRT counting range
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  double recall = 0.0;
  bool bounds_ok = false;         // lower + eps bound on every reported flow
  std::uint64_t max_overestimate = 0;
  std::size_t fragments = 0;
  bool complete = false;          // sweep traversal finished
  bool row_sums_ok = false;
  double pkt_p50 = 0, pkt_p90 = 0, pkt_p99 = 0, pkt_p999 = 0;
  double byte_p50 = 0, byte_p90 = 0, byte_p99 = 0, byte_p999 = 0;
  /// Pre-rendered "fkey=0x... est=N true=M" lines for the reported flows.
  std::vector<std::string> top_lines;
};

/// XFSM stateful-service outcome (service == "xfsm"); the three *_ok bits
/// are the independent compiled-pipeline-vs-interpreter observables
/// (delivery multiset, state-table contents, CRT-decoded counter banks).
struct XfsmReportSection {
  bool enabled = false;
  std::string machine;            // mac | policer | lb
  std::uint32_t hosts = 0;
  std::uint32_t num_states = 0;
  std::uint64_t range = 0;        // CRT counting range
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t expected_delivered = 0;
  std::uint64_t expected_drops = 0;
  std::uint64_t state_entries = 0;
  std::uint64_t evictions = 0;
  bool complete = false;          // read-out sweep finished
  std::size_t fragments = 0;
  bool deliveries_ok = false;
  bool states_ok = false;
  bool counts_ok = false;
  // Machine-specific outcomes.
  bool converged = false;              // mac: final round had zero floods
  std::uint64_t flood_deliveries = 0;  // mac: learning-round sinks
  std::uint64_t settled_deliveries = 0;  // mac: final-round sinks
  bool policer_in_bounds = false;      // policer: per-flow conformance held
  std::uint64_t flows = 0;             // policer: workload size
  std::uint64_t worst_excess = 0;      // policer: max packets over bound
  bool failover_ok = false;            // lb: traffic moved to the partner
};

/// Adversarial discovery outcome (service == "discovery"): both mechanisms
/// run under the same attack schedule — the hardened in-band snapshot and
/// the unhardened LLDP baseline — and the section reports what each
/// admitted, what the defenses turned away, and how fast each map became
/// correct (in wire hops) once the attack stopped.
struct DiscoveryReportSection {
  bool enabled = false;
  std::string attack;                  // lldp_spoof | probe_wormhole | flap_storm | none
  std::uint32_t rounds = 0;            // discovery rounds executed
  std::uint32_t rounds_deferred = 0;   // rate-guard deferrals (snapshot side)
  std::uint64_t relayed = 0;           // wormhole frame copies the sim performed
  sim::Time attack_stop = 0;           // last scheduled attack event
  // Hardened snapshot side.
  bool snapshot_correct = false;       // final map == ground truth
  std::uint64_t snapshot_edges = 0;    // final map size
  std::uint64_t snapshot_fabricated = 0;       // fabricated edges in final map
  std::uint64_t snapshot_fabricated_peak = 0;  // worst round (poisoned edges)
  std::uint64_t snapshot_msgs = 0;             // message cost under attack
  std::uint64_t snapshot_hops_to_correct = 0;  // post-attack hops to first correct map
  bool snapshot_converged = false;     // reached a correct map post-attack
  std::uint64_t reports_rejected = 0;  // nonce-failed finish reports dropped
  std::uint64_t edges_quarantined = 0; // ingress-consistency removals
  // Unhardened LLDP baseline side.
  bool lldp_correct = false;
  std::uint64_t lldp_edges = 0;
  std::uint64_t lldp_fabricated = 0;
  std::uint64_t lldp_fabricated_peak = 0;
  std::uint64_t lldp_msgs = 0;
  std::uint64_t lldp_hops_to_correct = 0;
  bool lldp_converged = false;
};

/// Run identity + outcome, filled by the caller (tools/obs_report copies it
/// out of the scenario result).
struct RunHeader {
  std::string name;
  std::string topology;   // "ring" etc.
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint64_t seed = 0;
  std::uint32_t root = 0;
  std::string service;    // plain | snapshot | anycast | critical
  bool hardened = false;
  std::string verdict;    // "complete" | "incomplete"
  std::uint32_t attempts = 1;
  std::uint32_t final_epoch = 0;
  // Hardened runs: typed retry verdict (verdict / stale-verdict / exhausted)
  // distinguishing "ran out of attempts" from "only a superseded epoch ever
  // answered".  Empty on non-hardened runs.
  std::string retry_outcome;
  bool ground_truth_ok = false;
  std::string ground_truth_detail;
  // Recovery service (self-healing) outcome; meaningful when enabled.
  bool recovery_enabled = false;
  bool final_audit_clean = true;
  std::uint64_t divergences = 0;
  std::uint64_t repairs = 0;
  std::uint64_t quarantines = 0;
  // Top-K sketch telemetry; rendered only when topk.enabled.
  TopkReportSection topk;
  // XFSM stateful services; rendered only when xfsm.enabled.
  XfsmReportSection xfsm;
  // Adversarial discovery arena; rendered only when discovery.enabled.
  DiscoveryReportSection discovery;
};

/// The full text report: run summary, causal timeline (faults, epoch bumps,
/// verdict, with hop positions), per-switch hop heatmap, histogram
/// percentiles, fault->reaction latencies, per-epoch anomalies, and the
/// invariant verdict.
void write_report(std::ostream& os, const RunHeader& h, const Timeline& tl);

/// Prometheus text exposition (gauges/counters, '#'-commented), suitable
/// for diffing or scraping: run outcome, wire totals, per-switch hop
/// counts, histogram percentiles, violation/anomaly counts.
void write_prom_snapshot(std::ostream& os, const RunHeader& h, const Timeline& tl);

}  // namespace ss::obs
