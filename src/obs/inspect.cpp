#include "obs/inspect.hpp"

#include <map>
#include <set>

#include "ofp/dump.hpp"
#include "util/strings.hpp"

namespace ss::obs {

std::string anomaly_kind_name(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::kDeadEndPort: return "dead_end_port";
    case AnomalyKind::kFailoverActivation: return "failover_activation";
    case AnomalyKind::kNoLiveBucket: return "no_live_bucket";
    case AnomalyKind::kRevisitedPort: return "revisited_port";
  }
  return "?";
}

HopRecord hop_record_from(const sim::TraceEntry& te) {
  HopRecord h;
  h.seq = te.seq;
  h.time = te.time;
  h.from = te.from;
  h.out_port = te.out_port;
  h.to = te.to;
  h.in_port = te.in_port;
  h.delivered = te.delivered;
  for (const sim::TraceMatch& m : te.matches)
    h.matches.push_back({m.table, m.priority, m.cookie, m.rule});
  for (const sim::TraceGroup& g : te.groups)
    h.groups.push_back({g.group, ofp::group_type_name(g.type), g.bucket});
  h.tag_hex = te.packet.tag.to_hex();
  return h;
}

std::vector<HopRecord> hops_from_network(const sim::Network& net) {
  std::vector<HopRecord> out;
  out.reserve(net.trace().size());
  for (const sim::TraceEntry& te : net.trace()) out.push_back(hop_record_from(te));
  return out;
}

bool hop_from_json_line(std::string_view line, HopRecord& out) {
  const auto parsed = json_parse(line);
  if (!parsed || !parsed->is_object()) return false;
  if (parsed->str("type") != "hop") return false;
  HopRecord h;
  h.seq = parsed->u64("seq");
  h.time = parsed->u64("time");
  h.from = static_cast<std::uint32_t>(parsed->u64("from"));
  h.out_port = static_cast<std::uint32_t>(parsed->u64("out_port"));
  h.to = static_cast<std::uint32_t>(parsed->u64("to"));
  h.in_port = static_cast<std::uint32_t>(parsed->u64("in_port"));
  h.delivered = parsed->boolean_or("delivered");
  h.tag_hex = parsed->str("tag");
  if (const JsonValue* ms = parsed->get("matches"); ms != nullptr && ms->is_array()) {
    for (const JsonValue& m : ms->array)
      h.matches.push_back({static_cast<std::uint32_t>(m.u64("table")),
                           static_cast<std::uint32_t>(m.u64("priority")),
                           m.u64("cookie"), m.str("rule")});
  }
  if (const JsonValue* gs = parsed->get("groups"); gs != nullptr && gs->is_array()) {
    for (const JsonValue& g : gs->array)
      h.groups.push_back({static_cast<std::uint32_t>(g.u64("group")),
                          g.str("group_type"),
                          static_cast<std::int32_t>(g.i64("bucket", -1))});
  }
  out = std::move(h);
  return true;
}

InspectReport inspect_hops(const std::vector<HopRecord>& hops) {
  InspectReport rep;
  rep.hop_count = hops.size();
  if (hops.empty()) return rep;

  const std::string ff_name = ofp::group_type_name(ofp::GroupType::kFastFailover);
  std::set<std::uint32_t> seen;
  rep.visit_order.push_back(hops.front().from);
  seen.insert(hops.front().from);

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> port_use;

  for (std::size_t i = 0; i < hops.size(); ++i) {
    const HopRecord& h = hops[i];
    if (h.delivered) {
      ++rep.delivered_count;
      if (seen.insert(h.to).second) rep.visit_order.push_back(h.to);
    } else {
      rep.anomalies.push_back(
          {AnomalyKind::kDeadEndPort, i,
           util::cat("hop ", h.seq, ": switch ", h.from, " port ", h.out_port,
                     " transmitted but nothing arrived at switch ", h.to)});
    }
    for (const HopGroup& g : h.groups) {
      if (g.type != ff_name) continue;
      if (g.bucket > 0) {
        ++rep.failover_count;
        rep.anomalies.push_back(
            {AnomalyKind::kFailoverActivation, i,
             util::cat("hop ", h.seq, ": switch ", h.from, " group ", g.group,
                       " failed over to bucket ", g.bucket,
                       " (preferred port dead)")});
      } else if (g.bucket < 0) {
        rep.anomalies.push_back(
            {AnomalyKind::kNoLiveBucket, i,
             util::cat("hop ", h.seq, ": switch ", h.from, " group ", g.group,
                       " had no live bucket")});
      }
    }
    const std::size_t uses = ++port_use[{h.from, h.out_port}];
    if (uses == 3) {  // report each offending directed port once
      rep.anomalies.push_back(
          {AnomalyKind::kRevisitedPort, i,
           util::cat("switch ", h.from, " port ", h.out_port,
                     " crossed more than twice — rule loop or restarted run")});
    }
  }
  return rep;
}

}  // namespace ss::obs
