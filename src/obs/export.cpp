#include "obs/export.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "ofp/dump.hpp"

namespace ss::obs {

void write_flow_stats(std::ostream& os, const sim::Network& net, bool only_hit) {
  for (ofp::SwitchId v = 0; v < net.switch_count(); ++v) {
    for (const ofp::FlowStatsEntry& f : ofp::flow_stats(net.sw(v), only_hit)) {
      os << JsonObj()
                .add("type", "flow")
                .add("switch", static_cast<std::uint64_t>(v))
                .add("table", static_cast<std::uint64_t>(f.table))
                .add("priority", static_cast<std::uint64_t>(f.priority))
                .add("cookie", f.cookie)
                .add("rule", f.name)
                .add("packets", f.packet_count)
                .add("bytes", f.byte_count)
                .str()
         << "\n";
    }
  }
}

void write_group_stats(std::ostream& os, const sim::Network& net, bool only_executed) {
  for (ofp::SwitchId v = 0; v < net.switch_count(); ++v) {
    for (const ofp::GroupStatsEntry& g : ofp::group_stats(net.sw(v), only_executed)) {
      JsonArr buckets;
      for (const ofp::BucketCounters& b : g.buckets)
        buckets.push(JsonObj().add("packets", b.packet_count).add("bytes", b.byte_count));
      os << JsonObj()
                .add("type", "group")
                .add("switch", static_cast<std::uint64_t>(v))
                .add("group", static_cast<std::uint64_t>(g.id))
                .add("group_type", ofp::group_type_name(g.type))
                .add("name", g.name)
                .add("execs", g.exec_count)
                .add_raw("buckets", buckets.str())
                .str()
         << "\n";
    }
  }
}

void write_port_stats(std::ostream& os, const sim::Network& net) {
  for (ofp::SwitchId v = 0; v < net.switch_count(); ++v) {
    for (const ofp::PortStatsEntry& p : ofp::port_stats(net.sw(v))) {
      os << JsonObj()
                .add("type", "port")
                .add("switch", static_cast<std::uint64_t>(v))
                .add("port", static_cast<std::uint64_t>(p.port))
                .add("live", p.live)
                .add("rx_packets", p.rx_packets)
                .add("tx_packets", p.tx_packets)
                .add("rx_bytes", p.rx_bytes)
                .add("tx_bytes", p.tx_bytes)
                .add("tx_dropped", p.tx_dropped)
                .str()
         << "\n";
    }
  }
}

void write_link_stats(std::ostream& os, const sim::Network& net) {
  for (graph::EdgeId e = 0; e < net.link_count(); ++e) {
    const sim::Link& l = net.link(e);
    for (const bool a_to_b : {true, false}) {
      const sim::WireCounters& w = l.wire(a_to_b);
      if (w.sent == 0) continue;
      const sim::LinkEnd& src = a_to_b ? l.end_a() : l.end_b();
      const sim::LinkEnd& dst = a_to_b ? l.end_b() : l.end_a();
      os << JsonObj()
                .add("type", "link")
                .add("link", static_cast<std::uint64_t>(e))
                .add("from", static_cast<std::uint64_t>(src.sw))
                .add("to", static_cast<std::uint64_t>(dst.sw))
                .add("up", l.up())
                .add("sent", w.sent)
                .add("delivered", w.delivered)
                .add("dropped_down", w.dropped_down)
                .add("dropped_blackhole", w.dropped_blackhole)
                .add("dropped_loss", w.dropped_loss)
                .str()
         << "\n";
    }
  }
}

std::string hop_json(const sim::TraceEntry& te) {
  JsonArr matches;
  for (const sim::TraceMatch& m : te.matches)
    matches.push(JsonObj()
                     .add("table", static_cast<std::uint64_t>(m.table))
                     .add("priority", static_cast<std::uint64_t>(m.priority))
                     .add("cookie", m.cookie)
                     .add("rule", m.rule));
  JsonArr groups;
  for (const sim::TraceGroup& g : te.groups)
    groups.push(JsonObj()
                    .add("group", static_cast<std::uint64_t>(g.group))
                    .add("group_type", ofp::group_type_name(g.type))
                    .add("bucket", static_cast<std::int64_t>(g.bucket)));
  JsonArr labels;
  for (std::uint32_t l : te.packet.labels) labels.push(static_cast<std::uint64_t>(l));
  return JsonObj()
      .add("type", "hop")
      .add("seq", te.seq)
      .add("time", te.time)
      .add("from", static_cast<std::uint64_t>(te.from))
      .add("out_port", static_cast<std::uint64_t>(te.out_port))
      .add("to", static_cast<std::uint64_t>(te.to))
      .add("in_port", static_cast<std::uint64_t>(te.in_port))
      .add("delivered", te.delivered)
      .add("eth_type", static_cast<std::uint64_t>(te.packet.eth_type))
      .add("ttl", static_cast<std::uint64_t>(te.packet.ttl))
      .add("wire_bytes", static_cast<std::uint64_t>(te.packet.wire_bytes()))
      .add("tag", te.packet.tag.to_hex())
      .add_raw("labels", labels.str())
      .add_raw("matches", matches.str())
      .add_raw("groups", groups.str())
      .str();
}

void write_trace(std::ostream& os, const sim::Network& net) {
  for (const sim::TraceEntry& te : net.trace()) os << hop_json(te) << "\n";
}

void write_run_stats(std::ostream& os, const core::RunStats& rs, std::string_view label) {
  os << JsonObj()
            .add("type", "run")
            .add("label", label)
            .add("inband_msgs", rs.inband_msgs)
            .add("outband_to_ctrl", rs.outband_to_ctrl)
            .add("outband_from_ctrl", rs.outband_from_ctrl)
            .add("max_wire_bytes", rs.max_wire_bytes)
            .str()
     << "\n";
}

void add_stats_fields(JsonObj& o, const sim::Stats& s) {
  o.add("sent", s.sent)
      .add("delivered", s.delivered)
      .add("dropped_down", s.dropped_down)
      .add("dropped_blackhole", s.dropped_blackhole)
      .add("dropped_loss", s.dropped_loss)
      .add("controller_msgs", s.controller_msgs)
      .add("packet_outs", s.packet_outs)
      .add("max_wire_bytes", s.max_wire_bytes)
      .add("events", s.events);
}

void write_sim_stats(std::ostream& os, const sim::Stats& s) {
  JsonObj o;
  o.add("type", "sim");
  add_stats_fields(o, s);
  os << o.str() << "\n";
}

void write_all(std::ostream& os, const sim::Network& net) {
  write_sim_stats(os, net.stats());
  write_flow_stats(os, net);
  write_group_stats(os, net);
  write_port_stats(os, net);
  write_link_stats(os, net);
  write_trace(os, net);
}

}  // namespace ss::obs
