#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>

namespace ss::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObj& JsonObj::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
  return *this;
}

JsonObj& JsonObj::add(std::string_view k, std::string_view v) {
  key(k).body_ += '"';
  body_ += json_escape(v);
  body_ += '"';
  return *this;
}

JsonObj& JsonObj::add(std::string_view k, const char* v) {
  return add(k, std::string_view(v));
}

JsonObj& JsonObj::add(std::string_view k, bool v) {
  key(k).body_ += v ? "true" : "false";
  return *this;
}

JsonObj& JsonObj::add(std::string_view k, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  key(k).body_ += buf;
  return *this;
}

JsonObj& JsonObj::add_u(std::string_view k, std::uint64_t v) {
  key(k).body_ += std::to_string(v);
  return *this;
}

JsonObj& JsonObj::add_i(std::string_view k, std::int64_t v) {
  key(k).body_ += std::to_string(v);
  return *this;
}

JsonObj& JsonObj::add_raw(std::string_view k, std::string_view raw) {
  key(k).body_ += raw;
  return *this;
}

std::string JsonObj::str() const { return "{" + body_ + "}"; }

JsonArr& JsonArr::push_raw(std::string_view raw) {
  if (!body_.empty()) body_ += ',';
  body_ += raw;
  return *this;
}

JsonArr& JsonArr::push(std::uint64_t v) { return push_raw(std::to_string(v)); }

std::string JsonArr::str() const { return "[" + body_ + "]"; }

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------
namespace {

struct Parser {
  /// Nesting cap: recursive descent means stack frames, and "malformed
  /// input never crashes" includes a pathological 100k-deep array.  Far
  /// deeper than any schema we emit; beyond it the line is malformed.
  static constexpr int kMaxDepth = 256;

  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;
  int depth = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    ok = false;
    return false;
  }

  JsonValue value() {
    skip_ws();
    if (pos >= text.size()) {
      ok = false;
      return {};
    }
    const char c = text[pos];
    if (c == '{' || c == '[') {
      if (++depth > kMaxDepth) {
        ok = false;
        return {};
      }
      JsonValue v = c == '{' ? object() : array();
      --depth;
      return v;
    }
    if (c == '"') return string_value();
    if (c == 't') {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      literal("true");
      return v;
    }
    if (c == 'f') {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      literal("false");
      return v;
    }
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    eat('{');
    skip_ws();
    if (eat('}')) return v;
    while (ok) {
      skip_ws();
      JsonValue k = string_value();
      if (!ok || !eat(':')) {
        ok = false;
        return v;
      }
      v.object.emplace(std::move(k.string), value());
      if (eat(',')) continue;
      if (eat('}')) return v;
      ok = false;
    }
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    eat('[');
    skip_ws();
    if (eat(']')) return v;
    while (ok) {
      v.array.push_back(value());
      if (eat(',')) continue;
      if (eat(']')) return v;
      ok = false;
    }
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    skip_ws();
    if (!eat('"')) {
      ok = false;
      return v;
    }
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) {
              ok = false;
              return v;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else {
                ok = false;
                return v;
              }
            }
            // Our own emitter only writes \u00xx control escapes; decode
            // the low byte and pass anything wider through as '?'.
            v.string += code < 0x100 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            ok = false;
            return v;
        }
      } else {
        v.string += c;
      }
    }
    ok = false;
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '-' ||
            text[pos] == '+' || text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    const std::string_view tok = text.substr(start, pos - start);
    if (tok.empty()) {
      ok = false;
      return v;
    }
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v.number);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) ok = false;
    return v;
  }
};

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

std::uint64_t JsonValue::u64(std::string_view key, std::uint64_t dflt) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_number() ? static_cast<std::uint64_t>(v->number) : dflt;
}

std::int64_t JsonValue::i64(std::string_view key, std::int64_t dflt) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_number() ? static_cast<std::int64_t>(v->number) : dflt;
}

std::string JsonValue::str(std::string_view key, std::string dflt) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_string() ? v->string : dflt;
}

bool JsonValue::boolean_or(std::string_view key, bool dflt) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : dflt;
}

std::optional<JsonValue> json_parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.value();
  p.skip_ws();
  if (!p.ok || p.pos != text.size()) return std::nullopt;
  return v;
}

JsonlStats for_each_jsonl(std::istream& is,
                          const std::function<void(const JsonValue&)>& fn) {
  JsonlStats st;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++st.lines;
    const auto v = json_parse(line);
    if (!v) {
      ++st.malformed;
      continue;
    }
    ++st.parsed;
    if (fn) fn(*v);
  }
  return st;
}

std::uint64_t schema_version_of(const JsonValue& v) {
  return v.u64("schema_version", 0);
}

}  // namespace ss::obs
