#pragma once
// Causal timeline + online health invariants: join scenario fault events,
// attributed trace hops, counter cuts, and retry-epoch bumps onto ONE
// event-sequence axis, then check the run against invariants the simulator
// must uphold no matter what the fault schedule did:
//
//   * wire conservation   — per link direction, sent == delivered +
//                           dropped_down + dropped_blackhole + dropped_loss
//                           (the omniscient WireCounters must account for
//                           every packet put on the wire);
//   * counter monotonicity— cumulative sim::Stats counters never regress
//                           across timeline cuts;
//   * single DFS token    — within one retry epoch the traversal EtherType
//                           carries exactly one token: every hop departs
//                           from where the previous delivered hop arrived,
//                           and nothing moves after the token was dropped
//                           until a watchdog bumps the epoch;
//   * provoked failover   — a FAST-FAILOVER bucket > 0 is only legal while
//                           some incident link of the executing switch is
//                           administratively down or its peer switch is
//                           crashed (blackholes and loss keep ports live,
//                           so they can never justify a failover).
//
// The timeline ALSO answers the latency question the raw JSONL cannot:
// for each degradation fault, how many hops until the data plane visibly
// reacted (failover bucket / wire drop), until the watchdog bumped the
// epoch, and until the service produced its verdict.
//
// Layering: ss_scenario links ss_obs, not the reverse — faults arrive as
// sim::NetChange (via the network's change hook) and nothing here includes
// scenario/ headers.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/hist.hpp"
#include "obs/inspect.hpp"
#include "sim/network.hpp"

namespace ss::obs {

/// Fault categories the timeline reasons about (the subset of scheduled
/// NetChanges that are faults; callbacks are watchdog machinery, not
/// faults, and are never recorded).
enum class TlFaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kBlackholeOn,
  kBlackholeOff,
  kLossSet,
  kSwitchCrash,
  kSwitchRestore,
  kSwitchRestart,   // power-cycle: up again but tables wiped
  kRuleCorrupt,     // silent flow/group corruption on one switch
  kHeaderCorrupt,   // tag field overwritten on in-flight packets
  // Malicious family: these attack the CONTROL VIEW, not connectivity, so
  // tl_fault_degrades() is false for them — the data plane owes them no
  // failover/drop reaction; the discovery invariants judge them instead.
  kInject,          // adversarial host injection at a compromised port
  kRelayOn,         // wormhole tap installed between non-adjacent ports
  kRelayOff,
};

const char* tl_fault_kind_name(TlFaultKind k);

/// Does this fault degrade the network (and therefore deserve a reaction)?
bool tl_fault_degrades(TlFaultKind k, double rate);

struct TlFault {
  sim::Time at = 0;
  TlFaultKind kind = TlFaultKind::kLinkDown;
  graph::EdgeId edge = 0;   // link-scoped kinds
  ofp::SwitchId sw = 0;     // kSwitchCrash / kSwitchRestore
  double rate = 0.0;        // kLossSet
  std::string label;        // "link_down edge=12" spelling
  sim::Stats stats;         // cumulative counters at the cut
  std::uint64_t at_hop = 0; // hops ingested strictly before this fault (set by finalize)
};

enum class InvariantKind : std::uint8_t {
  kWireConservation,
  kCounterRegression,
  kDfsTokenFork,
  kUnprovokedFailover,
  kSketchBound,   // count-min decode broke estimate>=true / row-sum equality
  kNoFabricatedLink,  // a DEFENDED discovery admitted a link absent from the
                      // ground-truth graph into a final map
};

std::string invariant_kind_name(InvariantKind k);

struct InvariantViolation {
  InvariantKind kind;
  sim::Time time = 0;
  std::string detail;
};

/// How (and how fast, in hops) the data plane reacted to one degradation
/// fault.  Latencies are event-sequence distances — number of wire hops
/// between the fault's cut and the reaction — which is the deterministic,
/// delay-independent metric the paper's analysis speaks in.
struct FaultReaction {
  std::size_t fault_index = 0;  // into faults()
  std::optional<std::uint64_t> reaction_seq;  // trace seq of first reaction hop
  std::string reaction_kind;                  // "failover" | "wire_drop"
  std::uint64_t reaction_latency_hops = 0;
  std::optional<std::uint32_t> epoch_after;   // first epoch bump after the fault
  std::uint64_t epoch_latency_hops = 0;
  std::optional<std::uint64_t> verdict_latency_hops;
};

/// One telemetry sweep epoch placed on the axis: when a top-K sketch sweep
/// decoded, and whether its online invariant held (count-min lower bound +
/// row-sum consistency, checked by the decoder against ground truth).
struct SweepMark {
  sim::Time at = 0;
  std::uint32_t sweep = 0;   // 0-based sweep ordinal
  bool ok = true;
  std::string label;         // "topk sweep=0 top=20 ok" spelling
  std::uint64_t at_hop = 0;  // hops ingested with time <= at (set by finalize)
};

/// One discovery round's final map placed on the axis: which mechanism,
/// whether its defenses were on, and how many fabricated (not-in-ground-
/// truth) edges it admitted.  A defended map with fabricated > 0 files the
/// kNoFabricatedLink violation at add_map() time.
struct MapMark {
  sim::Time at = 0;
  std::uint32_t round = 0;
  bool defended = true;
  std::uint64_t fabricated = 0;
  std::string label;         // "discovery round=2 snapshot fabricated=0" spelling
  std::uint64_t at_hop = 0;  // hops ingested with time <= at (set by finalize)
};

/// One entry on the unified axis (faults before hops at equal time,
/// matching the simulator's apply-changes-then-arrivals ordering).
struct TimelineEvent {
  enum class Kind : std::uint8_t { kFault, kHop, kEpochBump, kVerdict, kSweep, kMap };
  Kind kind = Kind::kHop;
  sim::Time time = 0;
  std::size_t index = 0;     // kFault: faults()[index]; kHop: hops()[index];
                             // kSweep: sweeps()[index]; kMap: maps()[index]
  std::uint32_t epoch = 0;   // kHop / kEpochBump
};

class Timeline {
 public:
  /// `g` must outlive the timeline (it is the scenario's topology).
  explicit Timeline(const graph::Graph& g);

  /// Decode the retry epoch from a packet tag; empty = everything epoch 0.
  using EpochFn = std::function<std::uint32_t(const ofp::Packet&)>;

  /// Ingest one applied scheduled change (adapter for
  /// sim::Network::set_change_hook); kCallback changes are ignored.
  void add_change(sim::Time t, const sim::NetChange& c, const sim::Stats& cumulative);

  /// Ingest the network's attributed trace (post-run).  `traversal_eth`
  /// selects the token-carrying EtherType for the single-token check.
  void ingest_trace(const sim::Network& net, EpochFn epoch_of = {},
                    std::uint16_t traversal_eth = 0x88b5);

  /// The service's accepted answer (timestamp + human label).
  void set_verdict(sim::Time at, std::string label);

  /// Record one telemetry sweep epoch.  ok=false files an
  /// InvariantKind::kSketchBound violation immediately; finalize() merges
  /// the mark onto the event axis and stamps its hop position.
  void add_sweep(sim::Time at, std::uint32_t sweep, bool ok, std::string label);

  /// Record one discovery round's final map.  defended && fabricated > 0
  /// files an InvariantKind::kNoFabricatedLink violation immediately;
  /// finalize() merges the mark onto the event axis like sweeps.
  void add_map(sim::Time at, std::uint32_t round, bool defended,
               std::uint64_t fabricated, std::string label);

  /// Merge everything onto one axis and run the invariants (wire
  /// conservation against `net`'s links, a final counter cut against
  /// `net`'s stats).  Call exactly once, after ingestion.
  void finalize(const sim::Network& net);

  // --- results (valid after finalize) ---
  const std::vector<TimelineEvent>& events() const { return events_; }
  const std::vector<TlFault>& faults() const { return faults_; }
  const std::vector<HopRecord>& hops() const { return hops_; }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  const std::vector<FaultReaction>& reactions() const { return reactions_; }
  const std::vector<SweepMark>& sweeps() const { return sweeps_; }
  const std::vector<MapMark>& maps() const { return maps_; }

  /// Per-epoch structural inspection (dead ends, failovers, port reuse) —
  /// partitioned so a retried traversal does not false-positive the
  /// crossed-more-than-twice check against its own earlier attempts.
  const std::vector<std::pair<std::uint32_t, InspectReport>>& inspect_by_epoch() const {
    return inspect_;
  }
  /// Distinct anomaly kind names across every epoch, sorted.
  std::vector<std::string> anomaly_kinds() const;

  const std::map<std::uint32_t, std::uint64_t>& hops_per_switch() const {
    return hops_per_switch_;
  }
  const Histogram& wire_bytes_hist() const { return wire_bytes_; }
  const Histogram& tables_per_hop_hist() const { return tables_per_hop_; }
  const Histogram& hops_per_epoch_hist() const { return hops_per_epoch_; }

  std::uint64_t hop_count() const { return hops_.size(); }
  std::uint32_t max_epoch() const { return max_epoch_; }
  std::uint64_t trace_dropped() const { return trace_dropped_; }
  std::optional<sim::Time> verdict_at() const { return verdict_at_; }
  const std::string& verdict_label() const { return verdict_label_; }
  /// Hops ingested with time <= verdict_at (the verdict's sequence position).
  std::uint64_t verdict_at_hop() const { return verdict_at_hop_; }

  /// Whole-run WireCounters totals (captured by finalize).
  const sim::WireCounters& wire_totals() const { return wire_totals_; }
  const sim::Stats& final_stats() const { return final_stats_; }

 private:
  void violate(InvariantKind k, sim::Time t, std::string detail);
  void check_counter_cut(const sim::Stats& cut, sim::Time t);
  bool failover_provoked(std::uint32_t at_switch) const;
  bool hop_crosses(const HopRecord& h, graph::EdgeId e) const;

  const graph::Graph* g_;
  std::vector<std::vector<graph::EdgeId>> incident_;  // per node

  std::vector<TlFault> faults_;
  std::vector<HopRecord> hops_;
  std::vector<std::uint32_t> hop_epoch_;
  std::vector<std::uint16_t> hop_eth_;
  std::vector<std::uint64_t> hop_bytes_;
  std::uint64_t trace_dropped_ = 0;
  std::uint16_t traversal_eth_ = 0;
  std::optional<sim::Time> verdict_at_;
  std::string verdict_label_;
  std::uint64_t verdict_at_hop_ = 0;

  std::vector<TimelineEvent> events_;
  std::vector<InvariantViolation> violations_;
  std::vector<FaultReaction> reactions_;
  std::vector<SweepMark> sweeps_;
  std::vector<MapMark> maps_;
  std::vector<std::pair<std::uint32_t, InspectReport>> inspect_;
  std::map<std::uint32_t, std::uint64_t> hops_per_switch_;
  Histogram wire_bytes_, tables_per_hop_, hops_per_epoch_;
  std::uint32_t max_epoch_ = 0;
  sim::WireCounters wire_totals_;
  sim::Stats final_stats_;

  // fault-state tracking during the finalize pass
  std::vector<bool> edge_admin_down_;
  std::vector<bool> sw_crashed_;

  std::optional<sim::Stats> last_cut_;
  bool finalized_ = false;
};

}  // namespace ss::obs
