#include "obs/report.hpp"

#include <algorithm>
#include <initializer_list>
#include <map>
#include <ostream>
#include <utility>

#include "util/strings.hpp"

namespace ss::obs {

namespace {

void hist_line(std::ostream& os, const char* name, const Histogram& h) {
  os << "  " << name << ": " << h.summary() << "\n";
}

std::map<std::string, std::uint64_t> anomaly_totals(const Timeline& tl) {
  // every kind present with an explicit zero, so snapshots diff cleanly
  std::map<std::string, std::uint64_t> totals{
      {"dead_end_port", 0},
      {"failover_activation", 0},
      {"no_live_bucket", 0},
      {"revisited_port", 0},
  };
  for (const auto& [epoch, rep] : tl.inspect_by_epoch())
    for (const Anomaly& a : rep.anomalies) ++totals[anomaly_kind_name(a.kind)];
  return totals;
}

std::map<std::string, std::uint64_t> violation_totals(const Timeline& tl) {
  std::map<std::string, std::uint64_t> totals{
      {"wire_conservation", 0},
      {"counter_regression", 0},
      {"dfs_token_fork", 0},
      {"unprovoked_failover", 0},
      {"sketch_bound", 0},
      {"no_fabricated_link", 0},
  };
  for (const InvariantViolation& v : tl.violations())
    ++totals[invariant_kind_name(v.kind)];
  return totals;
}

}  // namespace

void write_report(std::ostream& os, const RunHeader& h, const Timeline& tl) {
  const sim::WireCounters& w = tl.wire_totals();

  os << "== run ==\n";
  os << "  " << h.name << ": service=" << h.service
     << (h.hardened ? " (hardened)" : "") << " topology=" << h.topology
     << " n=" << h.nodes << " edges=" << h.edges << " seed=" << h.seed
     << " root=" << h.root << "\n";
  os << "  verdict=" << h.verdict << " attempts=" << h.attempts
     << " final_epoch=" << h.final_epoch;
  if (!h.retry_outcome.empty()) os << " retry_outcome=" << h.retry_outcome;
  os << " ground_truth=" << (h.ground_truth_ok ? "ok" : "FAIL") << " ("
     << h.ground_truth_detail << ")\n";
  if (h.recovery_enabled)
    os << "  recovery: final_audit="
       << (h.final_audit_clean ? "clean" : "DIVERGENT")
       << " divergences=" << h.divergences << " repairs=" << h.repairs
       << " quarantines=" << h.quarantines << "\n";
  os << "  hops=" << tl.hop_count() << " (" << tl.trace_dropped()
     << " evicted)  wire: sent=" << w.sent << " delivered=" << w.delivered
     << " dropped_down=" << w.dropped_down
     << " dropped_blackhole=" << w.dropped_blackhole
     << " dropped_loss=" << w.dropped_loss << "\n";

  os << "\n== timeline ==\n";
  std::uint64_t hop_pos = 0;
  bool any_event = false;
  for (const TimelineEvent& ev : tl.events()) {
    switch (ev.kind) {
      case TimelineEvent::Kind::kHop:
        ++hop_pos;
        break;
      case TimelineEvent::Kind::kFault:
        os << "  t=" << ev.time << " hop=" << hop_pos << "  fault  "
           << tl.faults()[ev.index].label << "\n";
        any_event = true;
        break;
      case TimelineEvent::Kind::kEpochBump:
        os << "  t=" << ev.time << " hop=" << hop_pos << "  epoch  -> "
           << ev.epoch << " (watchdog retry)\n";
        any_event = true;
        break;
      case TimelineEvent::Kind::kVerdict:
        os << "  t=" << ev.time << " hop=" << hop_pos << "  verdict "
           << tl.verdict_label() << "\n";
        any_event = true;
        break;
      case TimelineEvent::Kind::kSweep:
        os << "  t=" << ev.time << " hop=" << hop_pos << "  sweep  "
           << tl.sweeps()[ev.index].label
           << (tl.sweeps()[ev.index].ok ? "" : "  [SKETCH BOUND BROKEN]")
           << "\n";
        any_event = true;
        break;
      case TimelineEvent::Kind::kMap: {
        const MapMark& m = tl.maps()[ev.index];
        os << "  t=" << ev.time << " hop=" << hop_pos << "  map    " << m.label
           << (m.defended && m.fabricated > 0 ? "  [FABRICATED LINK ADMITTED]"
                                              : "")
           << "\n";
        any_event = true;
        break;
      }
    }
  }
  if (!any_event) os << "  (no fault / epoch / verdict events)\n";
  os << "  (" << tl.hop_count() << " hops across "
     << tl.inspect_by_epoch().size() << " epoch(s))\n";

  os << "\n== hop heatmap (transmissions per switch) ==\n";
  std::uint64_t peak = 1;
  for (const auto& [sw, n] : tl.hops_per_switch()) peak = std::max(peak, n);
  for (const auto& [sw, n] : tl.hops_per_switch()) {
    const std::size_t bar = static_cast<std::size_t>(n * 40 / peak);
    os << "  switch " << sw << ": " << n << " " << std::string(bar, '#') << "\n";
  }
  if (tl.hops_per_switch().empty()) os << "  (no hops recorded)\n";

  os << "\n== histograms ==\n";
  hist_line(os, "wire_bytes", tl.wire_bytes_hist());
  hist_line(os, "tables_per_hop", tl.tables_per_hop_hist());
  hist_line(os, "hops_per_epoch", tl.hops_per_epoch_hist());

  if (h.topk.enabled) {
    const TopkReportSection& t = h.topk;
    os << "\n== topk ==\n";
    os << "  k=" << t.k << " eps=" << t.epsilon << " delta=" << t.delta
       << " crt_range=" << t.range << "\n";
    os << "  workload: flows=" << t.flows << " packets=" << t.packets << "\n";
    os << "  sweep: fragments=" << t.fragments
       << " complete=" << (t.complete ? "yes" : "NO")
       << " row_sums=" << (t.row_sums_ok ? "consistent" : "BROKEN") << "\n";
    os << "  recall=" << t.recall
       << " bounds=" << (t.bounds_ok ? "held" : "VIOLATED")
       << " max_overestimate=" << t.max_overestimate << "\n";
    os << "  flow packets: p50=" << t.pkt_p50 << " p90=" << t.pkt_p90
       << " p99=" << t.pkt_p99 << " p99.9=" << t.pkt_p999 << "\n";
    os << "  flow bytes:   p50=" << t.byte_p50 << " p90=" << t.byte_p90
       << " p99=" << t.byte_p99 << " p99.9=" << t.byte_p999 << "\n";
    for (const std::string& line : t.top_lines) os << "  " << line << "\n";
  }

  if (h.xfsm.enabled) {
    const XfsmReportSection& x = h.xfsm;
    os << "\n== xfsm ==\n";
    os << "  machine=" << x.machine << " hosts=" << x.hosts
       << " states=" << x.num_states << " crt_range=" << x.range << "\n";
    os << "  packets: injected=" << x.injected << " delivered=" << x.delivered
       << " expected=" << x.expected_delivered
       << " dropped=" << x.expected_drops << "\n";
    os << "  state tables: entries=" << x.state_entries
       << " evictions=" << x.evictions << "\n";
    os << "  sweep: fragments=" << x.fragments
       << " complete=" << (x.complete ? "yes" : "NO") << "\n";
    os << "  vs interpreter: deliveries="
       << (x.deliveries_ok ? "match" : "MISMATCH")
       << " states=" << (x.states_ok ? "match" : "MISMATCH")
       << " counters=" << (x.counts_ok ? "match" : "MISMATCH") << "\n";
    if (x.machine == "mac")
      os << "  learning: flood_round=" << x.flood_deliveries
         << " settled_round=" << x.settled_deliveries
         << " converged=" << (x.converged ? "yes" : "NO") << "\n";
    if (x.machine == "policer")
      os << "  policing: flows=" << x.flows
         << " bounds=" << (x.policer_in_bounds ? "held" : "VIOLATED")
         << " worst_excess=" << x.worst_excess << "\n";
    if (x.machine == "lb")
      os << "  failover: " << (x.failover_ok ? "ok" : "BROKEN") << "\n";
  }

  if (h.discovery.enabled) {
    const DiscoveryReportSection& d = h.discovery;
    os << "\n== discovery ==\n";
    os << "  attack=" << d.attack << " rounds=" << d.rounds
       << " deferred=" << d.rounds_deferred << " relayed_frames=" << d.relayed
       << " attack_stop=t" << d.attack_stop << "\n";
    os << "  snapshot (hardened): edges=" << d.snapshot_edges
       << " fabricated=" << d.snapshot_fabricated
       << " (peak " << d.snapshot_fabricated_peak << ")"
       << " correct=" << (d.snapshot_correct ? "yes" : "NO") << "\n";
    os << "    defenses: reports_rejected=" << d.reports_rejected
       << " edges_quarantined=" << d.edges_quarantined << "\n";
    os << "    cost: msgs=" << d.snapshot_msgs << " hops_to_correct=";
    if (d.snapshot_converged)
      os << d.snapshot_hops_to_correct << "\n";
    else
      os << "never\n";
    os << "  lldp (baseline):     edges=" << d.lldp_edges
       << " fabricated=" << d.lldp_fabricated
       << " (peak " << d.lldp_fabricated_peak << ")"
       << " correct=" << (d.lldp_correct ? "yes" : "NO") << "\n";
    os << "    cost: msgs=" << d.lldp_msgs << " hops_to_correct=";
    if (d.lldp_converged)
      os << d.lldp_hops_to_correct << "\n";
    else
      os << "never\n";
  }

  os << "\n== fault reactions ==\n";
  if (tl.reactions().empty()) os << "  (no degradation faults)\n";
  for (const FaultReaction& r : tl.reactions()) {
    const TlFault& f = tl.faults()[r.fault_index];
    os << "  " << f.label << " @t=" << f.at << " (hop " << f.at_hop << ")\n";
    if (r.reaction_seq)
      os << "    first reaction: " << r.reaction_kind << " at hop seq "
         << *r.reaction_seq << " (+" << r.reaction_latency_hops << " hops)\n";
    else
      os << "    first reaction: none observed\n";
    if (r.epoch_after)
      os << "    epoch bump: -> " << *r.epoch_after << " (+"
         << r.epoch_latency_hops << " hops)\n";
    if (r.verdict_latency_hops)
      os << "    fault -> verdict: +" << *r.verdict_latency_hops << " hops\n";
  }

  os << "\n== anomalies ==\n";
  std::size_t n_anom = 0;
  for (const auto& [epoch, rep] : tl.inspect_by_epoch())
    for (const Anomaly& a : rep.anomalies) {
      os << "  [epoch " << epoch << "] " << anomaly_kind_name(a.kind) << ": "
         << a.detail << "\n";
      ++n_anom;
    }
  if (n_anom == 0) os << "  none\n";

  os << "\n== invariants ==\n";
  if (tl.violations().empty()) {
    os << "  all held (wire_conservation, counter_monotonicity, "
          "single_dfs_token, provoked_failover)\n";
  } else {
    for (const InvariantViolation& v : tl.violations())
      os << "  VIOLATION " << invariant_kind_name(v.kind) << " t=" << v.time
         << ": " << v.detail << "\n";
  }
}

void write_prom_snapshot(std::ostream& os, const RunHeader& h, const Timeline& tl) {
  const std::string run = util::cat("run=\"", h.name, "\"");
  os << "# SmartSouth run snapshot (Prometheus text exposition)\n";
  os << "ss_run_complete{" << run << "} " << (h.verdict == "complete" ? 1 : 0)
     << "\n";
  os << "ss_run_attempts{" << run << "} " << h.attempts << "\n";
  os << "ss_run_final_epoch{" << run << "} " << h.final_epoch << "\n";
  os << "ss_run_ground_truth_ok{" << run << "} " << (h.ground_truth_ok ? 1 : 0)
     << "\n";
  if (!h.retry_outcome.empty())
    os << "ss_run_retry_outcome{" << run << ",outcome=\"" << h.retry_outcome
       << "\"} 1\n";
  if (h.recovery_enabled) {
    os << "ss_recovery_final_audit_clean{" << run << "} "
       << (h.final_audit_clean ? 1 : 0) << "\n";
    os << "ss_recovery_divergences_total{" << run << "} " << h.divergences << "\n";
    os << "ss_recovery_repairs_total{" << run << "} " << h.repairs << "\n";
    os << "ss_recovery_quarantines_total{" << run << "} " << h.quarantines << "\n";
  }
  os << "ss_hops_total{" << run << "} " << tl.hop_count() << "\n";
  os << "ss_trace_evicted_total{" << run << "} " << tl.trace_dropped() << "\n";
  // Preferred spelling going forward (same value): the trace RING evicted
  // these hops, i.e. the recorder dropped history, not the wire.
  os << "ss_trace_dropped_total{" << run << "} " << tl.trace_dropped() << "\n";

  const sim::WireCounters& w = tl.wire_totals();
  os << "ss_wire_sent_total{" << run << "} " << w.sent << "\n";
  os << "ss_wire_delivered_total{" << run << "} " << w.delivered << "\n";
  os << "ss_wire_dropped_total{" << run << ",cause=\"down\"} " << w.dropped_down
     << "\n";
  os << "ss_wire_dropped_total{" << run << ",cause=\"blackhole\"} "
     << w.dropped_blackhole << "\n";
  os << "ss_wire_dropped_total{" << run << ",cause=\"loss\"} " << w.dropped_loss
     << "\n";

  for (const auto& [sw, n] : tl.hops_per_switch())
    os << "ss_switch_hops_total{" << run << ",switch=\"" << sw << "\"} " << n
       << "\n";

  const auto hist = [&](const char* name, const Histogram& hst) {
    os << "ss_hist_count{" << run << ",name=\"" << name << "\"} " << hst.count()
       << "\n";
    for (double q : {50.0, 90.0, 99.0})
      os << "ss_hist_quantile{" << run << ",name=\"" << name << "\",q=\"" << q
         << "\"} " << hst.percentile(q) << "\n";
  };
  hist("wire_bytes", tl.wire_bytes_hist());
  hist("tables_per_hop", tl.tables_per_hop_hist());
  hist("hops_per_epoch", tl.hops_per_epoch_hist());

  if (h.topk.enabled) {
    const TopkReportSection& t = h.topk;
    os << "ss_topk_k{" << run << "} " << t.k << "\n";
    os << "ss_topk_epsilon{" << run << "} " << t.epsilon << "\n";
    os << "ss_topk_delta{" << run << "} " << t.delta << "\n";
    os << "ss_topk_flows_total{" << run << "} " << t.flows << "\n";
    os << "ss_topk_packets_total{" << run << "} " << t.packets << "\n";
    os << "ss_topk_recall{" << run << "} " << t.recall << "\n";
    os << "ss_topk_bounds_ok{" << run << "} " << (t.bounds_ok ? 1 : 0) << "\n";
    os << "ss_topk_max_overestimate{" << run << "} " << t.max_overestimate
       << "\n";
    os << "ss_topk_fragments_total{" << run << "} " << t.fragments << "\n";
    os << "ss_topk_sweep_complete{" << run << "} " << (t.complete ? 1 : 0)
       << "\n";
    os << "ss_topk_row_sums_ok{" << run << "} " << (t.row_sums_ok ? 1 : 0)
       << "\n";
    const auto q = [&](const char* name, double p50, double p90, double p99,
                      double p999) {
      for (const auto& [qq, v] : std::initializer_list<std::pair<const char*, double>>{
               {"50", p50}, {"90", p90}, {"99", p99}, {"99.9", p999}})
        os << "ss_topk_flow_quantile{" << run << ",name=\"" << name << "\",q=\""
           << qq << "\"} " << v << "\n";
    };
    q("packets", t.pkt_p50, t.pkt_p90, t.pkt_p99, t.pkt_p999);
    q("bytes", t.byte_p50, t.byte_p90, t.byte_p99, t.byte_p999);
  }

  if (h.xfsm.enabled) {
    const XfsmReportSection& x = h.xfsm;
    const std::string m = util::cat(run, ",machine=\"", x.machine, "\"");
    os << "ss_xfsm_hosts{" << m << "} " << x.hosts << "\n";
    os << "ss_xfsm_states{" << m << "} " << x.num_states << "\n";
    os << "ss_xfsm_injected_total{" << m << "} " << x.injected << "\n";
    os << "ss_xfsm_delivered_total{" << m << "} " << x.delivered << "\n";
    os << "ss_xfsm_dropped_total{" << m << "} " << x.expected_drops << "\n";
    os << "ss_xfsm_state_entries{" << m << "} " << x.state_entries << "\n";
    os << "ss_xfsm_evictions_total{" << m << "} " << x.evictions << "\n";
    os << "ss_xfsm_sweep_complete{" << m << "} " << (x.complete ? 1 : 0) << "\n";
    os << "ss_xfsm_fragments_total{" << m << "} " << x.fragments << "\n";
    os << "ss_xfsm_deliveries_ok{" << m << "} " << (x.deliveries_ok ? 1 : 0)
       << "\n";
    os << "ss_xfsm_states_ok{" << m << "} " << (x.states_ok ? 1 : 0) << "\n";
    os << "ss_xfsm_counts_ok{" << m << "} " << (x.counts_ok ? 1 : 0) << "\n";
    if (x.machine == "mac") {
      os << "ss_xfsm_converged{" << m << "} " << (x.converged ? 1 : 0) << "\n";
      os << "ss_xfsm_flood_deliveries{" << m << "} " << x.flood_deliveries
         << "\n";
      os << "ss_xfsm_settled_deliveries{" << m << "} " << x.settled_deliveries
         << "\n";
    }
    if (x.machine == "policer") {
      os << "ss_xfsm_policer_in_bounds{" << m << "} "
         << (x.policer_in_bounds ? 1 : 0) << "\n";
      os << "ss_xfsm_policer_flows{" << m << "} " << x.flows << "\n";
      os << "ss_xfsm_policer_worst_excess{" << m << "} " << x.worst_excess
         << "\n";
    }
    if (x.machine == "lb")
      os << "ss_xfsm_failover_ok{" << m << "} " << (x.failover_ok ? 1 : 0)
         << "\n";
  }

  if (h.discovery.enabled) {
    const DiscoveryReportSection& d = h.discovery;
    const std::string a = util::cat(run, ",attack=\"", d.attack, "\"");
    os << "ss_discovery_rounds_total{" << a << "} " << d.rounds << "\n";
    os << "ss_discovery_rounds_deferred_total{" << a << "} "
       << d.rounds_deferred << "\n";
    os << "ss_discovery_relayed_frames_total{" << a << "} " << d.relayed << "\n";
    const auto side = [&](const char* mech, bool correct, std::uint64_t edges,
                          std::uint64_t fab, std::uint64_t fab_peak,
                          std::uint64_t msgs, bool converged,
                          std::uint64_t hops) {
      const std::string s = util::cat(a, ",mechanism=\"", mech, "\"");
      os << "ss_discovery_edges{" << s << "} " << edges << "\n";
      os << "ss_discovery_fabricated_edges{" << s << "} " << fab << "\n";
      os << "ss_discovery_fabricated_edges_peak{" << s << "} " << fab_peak
         << "\n";
      os << "ss_discovery_map_correct{" << s << "} " << (correct ? 1 : 0)
         << "\n";
      os << "ss_discovery_msgs_total{" << s << "} " << msgs << "\n";
      os << "ss_discovery_converged{" << s << "} " << (converged ? 1 : 0)
         << "\n";
      if (converged)
        os << "ss_discovery_hops_to_correct{" << s << "} " << hops << "\n";
    };
    side("snapshot", d.snapshot_correct, d.snapshot_edges,
         d.snapshot_fabricated, d.snapshot_fabricated_peak, d.snapshot_msgs,
         d.snapshot_converged, d.snapshot_hops_to_correct);
    side("lldp", d.lldp_correct, d.lldp_edges, d.lldp_fabricated,
         d.lldp_fabricated_peak, d.lldp_msgs, d.lldp_converged,
         d.lldp_hops_to_correct);
    os << "ss_discovery_reports_rejected_total{" << a << "} "
       << d.reports_rejected << "\n";
    os << "ss_discovery_edges_quarantined_total{" << a << "} "
       << d.edges_quarantined << "\n";
  }

  for (const auto& [kind, n] : violation_totals(tl))
    os << "ss_invariant_violations_total{" << run << ",kind=\"" << kind << "\"} "
       << n << "\n";
  for (const auto& [kind, n] : anomaly_totals(tl))
    os << "ss_anomalies_total{" << run << ",kind=\"" << kind << "\"} " << n
       << "\n";

  for (const FaultReaction& r : tl.reactions()) {
    const TlFault& f = tl.faults()[r.fault_index];
    const std::string fault = util::cat(run, ",fault=\"", f.label, "\"");
    if (r.reaction_seq)
      os << "ss_fault_reaction_hops{" << fault << ",kind=\"" << r.reaction_kind
         << "\"} " << r.reaction_latency_hops << "\n";
    if (r.epoch_after)
      os << "ss_fault_epoch_bump_hops{" << fault << "} " << r.epoch_latency_hops
         << "\n";
    if (r.verdict_latency_hops)
      os << "ss_fault_verdict_hops{" << fault << "} " << *r.verdict_latency_hops
         << "\n";
  }
}

}  // namespace ss::obs
