#pragma once
// Log-bucketed HDR-style histograms for the profiling layer: per-hop lookup
// latencies, per-traversal hop counts, per-service completion times.
//
// Design constraints, in order:
//  * deterministic — integer-only bucketing, sparse serialization in bucket
//    order, so two runs that record the same values emit identical bytes;
//  * mergeable — merge() is plain bucket-count addition (plus min/max/sum),
//    commutative and associative, so bench::parallel_sweep shards can be
//    folded in ANY order without changing the serialized result;
//  * bounded error — values below 2^(kSubBits+1) are exact; above that each
//    power of two is split into 2^kSubBits sub-buckets, giving a relative
//    quantization error below 1/2^kSubBits (~6% at the default 4 sub-bits).
//
// The scheme is the integer core of HdrHistogram: for v < 2^(kSubBits+1)
// the bucket index IS the value; otherwise with b = bit_width(v) - 1 the
// index is (b - kSubBits) * 2^kSubBits + (v >> (b - kSubBits)), which is
// continuous and monotone in v.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace ss::obs {

class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits sub-buckets per power of two.
  static constexpr std::uint32_t kSubBits = 4;

  /// Bucket index for a value (exact below 2^(kSubBits+1)).
  static std::uint32_t bucket_of(std::uint64_t v);
  /// Smallest / largest value mapping to bucket `idx`.
  static std::uint64_t bucket_lo(std::uint32_t idx);
  static std::uint64_t bucket_hi(std::uint32_t idx);

  void record(std::uint64_t v, std::uint64_t count = 1);
  /// Add another histogram's contents (order-independent).
  void merge(const Histogram& other);
  void clear() { *this = Histogram{}; }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : double(sum_) / double(count_); }

  /// Value at percentile p (0..100): the upper bound of the bucket holding
  /// the rank-ceil(p/100 * count) recorded value, clamped to [min, max] so
  /// p=0 reports min and p=100 reports max exactly.  0 when empty.
  std::uint64_t percentile(double p) const;

  /// One JSONL line: {"type":"hist","name":...,"count":...,"sum":...,
  /// "min":...,"max":...,"buckets":[[idx,count],...]} with buckets sparse
  /// and ascending — byte-identical for equal contents.
  std::string to_json(std::string_view name) const;
  /// Rebuild from a parsed to_json() object; nullopt if not a hist record.
  static std::optional<Histogram> from_json(const JsonValue& v);

  /// "count=N min=... p50=... p90=... p99=... max=..." for text reports.
  std::string summary() const;

  bool operator==(const Histogram& o) const {
    return count_ == o.count_ && sum_ == o.sum_ && min_ == o.min_ &&
           max_ == o.max_ && buckets_ == o.buckets_;
  }

 private:
  std::map<std::uint32_t, std::uint64_t> buckets_;  // sparse, ordered
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace ss::obs
