#pragma once
// JSONL serialization of everything the observability layer measures: flow /
// group / port counters, link wire counters, attributed traces, and run
// stats.  One self-describing object per line ("type" discriminator), so a
// single sidecar file can interleave record kinds and downstream tooling
// (tools/trace_inspect, or any jq pipeline) filters by type.
//
// Schema (see docs/observability.md for the full field tables):
//   {"type":"flow",  "switch":s,"table":t,"priority":p,"cookie":c,
//    "rule":"...","packets":n,"bytes":n}
//   {"type":"group", "switch":s,"group":g,"group_type":"FAST-FAILOVER",
//    "execs":n,"buckets":[{"packets":n,"bytes":n},...]}
//   {"type":"port",  "switch":s,"port":p,"live":b,"rx_packets":n,
//    "tx_packets":n,"rx_bytes":n,"tx_bytes":n,"tx_dropped":n}
//   {"type":"link",  "link":e,"from":u,"to":v,"up":b,"sent":n,"delivered":n,
//    "dropped_down":n,"dropped_blackhole":n,"dropped_loss":n}
//   {"type":"hop",   "seq":n,"time":t,"from":u,"out_port":p,"to":v,
//    "in_port":q,"delivered":b,"eth_type":n,"ttl":n,"wire_bytes":n,
//    "tag":"hex","labels":[...],"matches":[...],"groups":[...]}
//   {"type":"run",   "label":"...","inband_msgs":n,...}
//   {"type":"sim",   "sent":n,"delivered":n,...}

#include <iosfwd>
#include <string_view>

#include "core/services.hpp"
#include "obs/json.hpp"
#include "ofp/stats.hpp"
#include "sim/network.hpp"

namespace ss::obs {

/// Per-rule counters of every switch.  `only_hit` (default) keeps the
/// sidecar compact by skipping never-matched rules.
void write_flow_stats(std::ostream& os, const sim::Network& net, bool only_hit = true);

/// Per-group exec + per-bucket counters.  `only_executed` skips idle groups.
void write_group_stats(std::ostream& os, const sim::Network& net,
                       bool only_executed = true);

/// Per-port switch-visible counters (every existing port).
void write_port_stats(std::ostream& os, const sim::Network& net);

/// Omniscient per-direction link wire counters (only directions with
/// traffic).
void write_link_stats(std::ostream& os, const sim::Network& net);

/// The attributed trace, one "hop" line per recorded transmission.
void write_trace(std::ostream& os, const sim::Network& net);

/// One TraceEntry as a JSON object string (shared by write_trace and tests).
std::string hop_json(const sim::TraceEntry& te);

void write_run_stats(std::ostream& os, const core::RunStats& rs, std::string_view label);

void write_sim_stats(std::ostream& os, const sim::Stats& s);

/// Append the Stats counters to an object under their canonical keys —
/// shared by the "sim" record and the scenario runner's per-event timeline
/// records, so both speak the same schema.
void add_stats_fields(JsonObj& o, const sim::Stats& s);

/// Everything at once: sim stats, flow/group/port/link counters, trace.
void write_all(std::ostream& os, const sim::Network& net);

}  // namespace ss::obs
