#pragma once
// Minimal JSON support for the observability layer: a streaming builder for
// JSONL emission (one object per line, deterministic key order) and a small
// recursive-descent parser for reading those lines back (trace_inspect's
// analyze mode).  Deliberately dependency-free — the container bakes in no
// JSON library, and the schema we read is our own.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ss::obs {

/// Version stamped on metrics sidecar records (*.metrics.jsonl "meta"
/// lines).  Bump when sidecar field semantics change; for_each_jsonl
/// consumers compare via schema_version_of and WARN on newer records
/// instead of crashing — forward-written files stay readable.
inline constexpr std::uint64_t kMetricsSchemaVersion = 1;

/// Escape for embedding inside a JSON string literal (no surrounding quotes).
std::string json_escape(std::string_view s);

/// Builder for one JSON object; add() keeps insertion order.
class JsonObj {
 public:
  JsonObj& add(std::string_view key, std::string_view v);
  JsonObj& add(std::string_view key, const char* v);
  JsonObj& add(std::string_view key, bool v);
  JsonObj& add(std::string_view key, double v);
  JsonObj& add_u(std::string_view key, std::uint64_t v);
  JsonObj& add_i(std::string_view key, std::int64_t v);
  /// Any integer type (uint64_t aliases differ across platforms, so one
  /// template beats an overload per width).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  JsonObj& add(std::string_view key, T v) {
    if constexpr (std::is_signed_v<T>)
      return add_i(key, static_cast<std::int64_t>(v));
    else
      return add_u(key, static_cast<std::uint64_t>(v));
  }
  /// Splice pre-encoded JSON (a nested array/object) verbatim.
  JsonObj& add_raw(std::string_view key, std::string_view raw_json);

  /// "{...}"
  std::string str() const;

 private:
  JsonObj& key(std::string_view k);
  std::string body_;
};

/// Builder for one JSON array of pre-encoded elements.
class JsonArr {
 public:
  JsonArr& push_raw(std::string_view raw_json);
  JsonArr& push(const JsonObj& o) { return push_raw(o.str()); }
  JsonArr& push(std::uint64_t v);
  /// "[...]"
  std::string str() const;

 private:
  std::string body_;
};

/// Parsed JSON value (numbers kept as double + exact u64 when lossless).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;
  /// Convenience typed reads with defaults.
  std::uint64_t u64(std::string_view key, std::uint64_t dflt = 0) const;
  std::int64_t i64(std::string_view key, std::int64_t dflt = 0) const;
  std::string str(std::string_view key, std::string dflt = {}) const;
  bool boolean_or(std::string_view key, bool dflt = false) const;
};

/// Parse one JSON document; nullopt on malformed input or trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

/// Tally of one JSONL reading pass.
struct JsonlStats {
  std::size_t lines = 0;      // non-empty lines seen
  std::size_t parsed = 0;     // lines that parsed to a value
  std::size_t malformed = 0;  // lines skipped (truncated / garbage / non-JSON)
};

/// Read `is` line by line and call `fn` for every line that parses.  The
/// contract every consumer relies on: malformed lines (truncated writes,
/// interleaved garbage, raw non-UTF8 bytes) are SKIPPED AND COUNTED, never
/// fatal — a half-written sidecar still yields every intact record.
JsonlStats for_each_jsonl(std::istream& is,
                          const std::function<void(const JsonValue&)>& fn);

/// The record's declared schema version; absent = 0 (legacy, pre-
/// versioning, always accepted).  Consumers skip-and-warn on records newer
/// than the version they were compiled against — never crash.
std::uint64_t schema_version_of(const JsonValue& v);

}  // namespace ss::obs
