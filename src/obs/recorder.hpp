#pragma once
// Flight recorder & streaming observability (the "black box" of a run).
//
// A Recorder rides inside one episode/trial of any long-running driver and
// produces two deterministic JSONL artifacts:
//
//   * a WINDOW STREAM — every `window_events` simulator events the tick
//     hook cuts a sampling window: each registered counter probe is read,
//     its delta over the window computed (with a monotonicity check), each
//     gauge probe is read instantaneously, and one self-describing
//     {"type":"window",...} line is appended.  Per-window invariants (wire
//     conservation of the aggregate link counters, counter monotonicity,
//     sketch-sweep verdicts) are evaluated ONLINE at every cut; a breach
//     appends an {"type":"alert",...} line immediately after the window
//     that tripped it.
//
//   * a POST-MORTEM BUNDLE — when the run failed (hardened-run verdict,
//     ground-truth mismatch, timeline violations) or any online alert
//     fired, finish() assembles a flight-recorder bundle: the last-K
//     applied fault events, the probe snapshot of the window that tripped,
//     a full ofp::dump_switch of every suspect switch, the fault-schedule
//     slice around the trip point, and the tail of the attributed trace as
//     standard "hop" lines (consumable by tools/obs_report --trace-style
//     inspection and hop_from_json_line).
//
// Everything is buffered into strings (stream() / bundle()); the drivers
// write buffers to disk in episode order AFTER their parallel sweep, which
// is what makes streamed output byte-identical at any thread count.  No
// wall-clock value is ever emitted.
//
// Layering: obs depends on sim/ofp/core (recovery probes are registered by
// the scenario runner, which owns the RecoveryService), never the reverse.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "sim/network.hpp"

namespace ss::obs {

/// Version stamped on every window-stream and bundle line.  Bump when a
/// record's fields change meaning; consumers accept <= this and warn (never
/// crash) on anything newer.
inline constexpr std::uint64_t kStreamSchemaVersion = 1;

struct RecorderConfig {
  std::uint64_t window_events = 256;  // simulator events per sampling window
  std::size_t last_k = 32;            // flight-ring depth (fr_event lines)
  std::size_t trace_tail = 16;        // trailing hop lines in a bundle
  std::size_t schedule_slice = 16;    // fault-schedule entries around the trip
};

class Recorder {
 public:
  using Sample = std::function<std::uint64_t()>;

  explicit Recorder(RecorderConfig cfg = {}) : cfg_(cfg) {}

  // --- probe registry (sorted by name; names are the stream's schema) ---
  /// A counter probe is cumulative and monotone; windows report its DELTA
  /// and a regression raises a counter_regression alert.
  void add_counter(std::string name, Sample fn);
  /// A gauge probe is instantaneous; windows report its value as-is.
  void add_gauge(std::string name, Sample fn);

  /// Register the standard probe set over `net` (sim stats, aggregate
  /// wire/flow/group/port/state-table counters, queue-depth gauges) and
  /// install the event-count tick hook that cuts windows.  Call once,
  /// after the scenario installed its rules and before net.run().
  void attach(sim::Network& net);

  /// Feed one applied scheduled change (wire this into the same change
  /// hook the timeline uses).  Faults land in the last-K flight ring;
  /// corruption-class faults also mark their switch as a suspect.
  void on_change(sim::Time t, const sim::NetChange& c);

  /// Telemetry sweep verdict (top-K / XFSM decode): ok=false queues a
  /// sketch_bound alert attributed to the next window cut.
  void note_sweep(bool ok, const std::string& label);

  /// The episode's fault plan, for the bundle's schedule slice.
  void set_schedule(std::vector<std::pair<sim::Time, std::string>> sched);

  /// Raise an alert explicitly (the runner files timeline violations here).
  void alert(const std::string& kind, const std::string& detail);

  /// Cut a window NOW (the tick hook calls this; exposed for tests).
  void cut_window(sim::Network& net, sim::Time now);

  /// Final partial window + {"type":"summary"} line; when `failed` or any
  /// alert fired, also assembles the post-mortem bundle.  Call exactly
  /// once, after the run (and after filing timeline violations).
  void finish(sim::Network& net, bool failed);

  const std::string& stream() const { return out_; }
  const std::string& bundle() const { return bundle_; }
  bool bundled() const { return !bundle_.empty(); }
  std::uint64_t windows() const { return window_; }
  std::uint64_t alert_count() const { return alerts_total_; }

 private:
  struct Probe {
    Sample fn;
    std::uint64_t last = 0;
  };
  struct FlightEvent {
    sim::Time time = 0;
    std::uint64_t window = 0;
    std::string label;
  };

  void raise(sim::Time t, const std::string& kind, const std::string& detail);
  void make_bundle(sim::Network& net, bool failed);

  RecorderConfig cfg_;
  std::map<std::string, Probe> counters_;
  std::map<std::string, Probe> gauges_;
  std::vector<std::pair<sim::Time, std::string>> schedule_;

  std::deque<FlightEvent> flight_;       // last-K applied fault events
  std::set<ofp::SwitchId> suspects_;     // corruption/restart victims
  std::vector<std::pair<std::string, std::string>> pending_;  // queued alerts

  std::string out_;
  std::string bundle_;
  std::uint64_t window_ = 0;
  sim::Time window_start_ = 0;
  std::uint64_t events_at_cut_ = 0;
  std::uint64_t alerts_total_ = 0;
  std::string trip_window_json_;  // probe snapshot of the first alerting window
  sim::Time trip_time_ = 0;
  std::string last_window_json_;
  bool attached_ = false;
  bool finished_ = false;
};

/// Tally of one pass over a window stream (obs_report --follow, tests).
struct StreamStats {
  std::uint64_t windows = 0;
  std::uint64_t alerts = 0;          // alert LINES seen
  std::uint64_t summaries = 0;
  std::uint64_t unknown_schema = 0;  // lines newer than kStreamSchemaVersion
  std::uint64_t other = 0;           // recognized-version lines of other types
  std::uint64_t summary_alerts = 0;  // "alerts" field of the last summary
  bool failed = false;               // "failed" field of the last summary
  JsonlStats jsonl;
};

/// Read a window stream, warning (to `warn`, when given) on records whose
/// schema_version is newer than this build — never crashing, matching the
/// for_each_jsonl skip-and-count contract for malformed lines.
StreamStats read_stream(std::istream& is, std::ostream* warn = nullptr);

}  // namespace ss::obs
