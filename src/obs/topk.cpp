#include "obs/topk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/eth_types.hpp"
#include "core/topk_labels.hpp"
#include "util/profile.hpp"

namespace ss::obs {

using core::CompilerOptions;
using core::ServiceKind;
using core::TagExtras;
using graph::NodeId;
using graph::PortNo;

double TopkParams::epsilon() const {
  return std::exp(1.0) / static_cast<double>(width());
}

double TopkParams::delta() const {
  return std::exp(-static_cast<double>(rows + sig_rows));
}

std::uint64_t TopkParams::range() const {
  std::uint64_t p = 1;
  for (std::uint32_t m : moduli) p *= m;
  return p;
}

namespace {

// Modular inverse of a (mod m) by extended Euclid; moduli are tiny and
// pairwise coprime, so the inverse always exists.
std::int64_t mod_inverse(std::int64_t a, std::int64_t m) {
  std::int64_t t = 0, newt = 1, r = m, newr = a % m;
  while (newr != 0) {
    const std::int64_t q = r / newr;
    t = std::exchange(newt, t - q * newt);
    r = std::exchange(newr, r - q * newr);
  }
  if (r != 1) throw std::invalid_argument("mod_inverse: not coprime");
  return ((t % m) + m) % m;
}

CompilerOptions make_topk_opts(const TopkParams& p) {
  CompilerOptions o;
  o.kind = ServiceKind::kTopkSweep;
  o.topk_switches = p.sketches;
  o.topk_rows = p.rows;
  o.topk_row_bits = p.row_bits;
  o.topk_sig_rows = p.sig_rows;
  o.topk_moduli = p.moduli;
  o.inband_collector = p.inband_collector;
  o.finish_report = true;
  return o;
}

}  // namespace

std::uint64_t crt_reconstruct(const std::vector<std::uint32_t>& residues,
                              const std::vector<std::uint32_t>& moduli) {
  if (residues.size() != moduli.size() || moduli.empty())
    throw std::invalid_argument("crt_reconstruct: residue/modulus mismatch");
  // Iterative combination: maintain x === residues[j] (mod M) over the
  // moduli folded so far.
  std::int64_t x = residues[0] % moduli[0];
  std::int64_t M = moduli[0];
  for (std::size_t j = 1; j < moduli.size(); ++j) {
    const std::int64_t m = moduli[j];
    const std::int64_t r = residues[j] % m;
    const std::int64_t t =
        ((r - x) % m + m) % m * mod_inverse(M % m, m) % m;
    x += M * t;
    M *= m;
  }
  return static_cast<std::uint64_t>(x);
}

TopkService::TopkService(const graph::Graph& g, TopkParams params)
    : graph_(g),
      params_(std::move(params)),
      layout_(graph_, TagExtras{.flow_key = true,
                                .flow_sig_bits = params_.sig_rows * params_.row_bits}),
      compiler_(graph_, layout_, make_topk_opts(params_)) {
  if (params_.k == 0) throw std::invalid_argument("TopkParams: k must be positive");
  if (params_.cand_slices == 0)
    throw std::invalid_argument("TopkParams: cand_slices must be positive");
}

void TopkService::pump(sim::Network& net, const std::vector<sim::FlowSpec>& flows,
                       std::uint32_t batch) const {
  const auto E = static_cast<std::uint32_t>(params_.sketches.size());
  const std::uint32_t key_bits = params_.rows * params_.row_bits;
  std::uint32_t since = 0;
  for (const sim::FlowSpec& f : flows) {
    if (key_bits < 32 && (f.fkey >> key_bits) != 0)
      throw std::invalid_argument(
          "TopkService::pump: flow key wider than the sketch hashes "
          "(workload key_bits must equal rows * row_bits)");
    const NodeId at = params_.sketches[sim::flow_ingress(f.fkey, E)];
    const PortNo deg = graph_.degree(at);
    if (deg == 0) throw std::logic_error("TopkService::pump: isolated sketch host");
    ofp::Packet pkt = layout_.make_packet(core::kEthFlow);
    layout_.set(pkt, layout_.flow_key(), f.fkey);
    if (params_.sig_rows != 0)
      layout_.set(pkt, layout_.flow_sig(),
                  sim::flow_sig(f.fkey, params_.sig_rows * params_.row_bits));
    layout_.set(pkt, layout_.out_port(), 1 + f.fkey % deg);
    pkt.payload_bytes = sim::flow_packet_bytes(f.fkey);
    for (std::uint32_t p = 0; p < f.packets; ++p) {
      net.packet_out(at, pkt);
      if (++since >= batch) {
        net.run();
        since = 0;
      }
    }
  }
  net.run();
}

TopkResult TopkService::sweep(sim::Network& net, NodeId root) {
  core::StatsScope scope(net);
  const std::size_t mark = net.controller_msgs().size();
  const std::size_t lmark = net.local_deliveries().size();
  net.packet_out(root, layout_.make_packet(core::kEthTraversal));
  net.run();

  TopkResult res;
  // Decode phase (everything after the traversal drained) is one profiled
  // sweep-decode op: label collection, CRT reconstruction, candidate
  // recovery, and peeling.
  util::prof::ScopedTimer pt(util::prof::Stage::kSweepDecode);

  // Collect fragment labels per reporter (out-of-band, or in-band at the
  // collector's LOCAL port).
  std::vector<std::pair<std::uint32_t, const ofp::Packet*>> reports;
  for (std::size_t j = mark; j < net.controller_msgs().size(); ++j) {
    const auto& m = net.controller_msgs()[j];
    reports.push_back({m.reason, &m.packet});
  }
  if (params_.inband_collector) {
    for (std::size_t j = lmark; j < net.local_deliveries().size(); ++j) {
      const auto& d = net.local_deliveries()[j];
      if (d.at != *params_.inband_collector || d.packet.eth_type != core::kEthReport)
        continue;
      reports.push_back(
          {static_cast<std::uint32_t>(layout_.get(d.packet, layout_.reason())),
           &d.packet});
    }
  }

  const auto K = params_.moduli.size();
  const std::uint32_t d = params_.rows;
  const std::uint32_t d_total = params_.rows + params_.sig_rows;
  const std::uint32_t w = params_.width();
  const std::uint32_t cells = d_total * w;
  const std::uint64_t range = params_.range();

  // residues[node][cell][modulus] — first sighting wins (one read per sweep
  // by construction; duplicates would mean a duplicated fragment copy).
  std::map<NodeId, std::vector<std::vector<std::int32_t>>> residues;
  for (const auto& [reason, pkt] : reports) {
    if (reason == core::kReasonFinish) {
      res.complete = true;
      continue;
    }
    if (reason != core::kReasonTopkFragment) continue;
    ++res.fragments;
    for (std::uint32_t label : pkt->labels) {
      const core::TopkRecord rec = core::decode_topk(label);
      if (rec.cell >= cells || rec.modulus_idx >= K) continue;  // foreign label
      auto [it, inserted] = residues.try_emplace(rec.node);
      if (inserted)
        it->second.assign(cells, std::vector<std::int32_t>(K, -1));
      auto& slot = it->second[rec.cell][rec.modulus_idx];
      if (slot < 0) slot = static_cast<std::int32_t>(rec.residue);
    }
  }

  // CRT-decode every read sketch into exact cell counts, discounting the
  // read increments of earlier sweeps.
  std::map<NodeId, std::vector<std::uint64_t>> counts;  // [cell]
  for (const auto& [node, cellres] : residues) {
    std::vector<std::uint64_t> cts(cells, 0);
    bool complete_sketch = true;
    for (std::uint32_t j = 0; j < cells; ++j) {
      std::vector<std::uint32_t> r(K);
      bool have_all = true;
      for (std::size_t m = 0; m < K; ++m) {
        if (cellres[j][m] < 0) {
          have_all = false;
          break;
        }
        r[m] = static_cast<std::uint32_t>(cellres[j][m]);
      }
      if (!have_all) {
        complete_sketch = false;
        continue;
      }
      cts[j] = (crt_reconstruct(r, params_.moduli) + range - sweeps_done_ % range) %
               range;
    }
    if (complete_sketch) counts.emplace(node, std::move(cts));
  }
  res.sketches_read = counts.size();

  // Row-sum invariant + per-sketch populations (signature rows included:
  // every packet increments one cell of every row).
  for (const auto& [node, cts] : counts) {
    std::uint64_t row0 = 0;
    for (std::uint32_t r = 0; r < d_total; ++r) {
      std::uint64_t s = 0;
      for (std::uint32_t v = 0; v < w; ++v) s += cts[r * w + v];
      if (r == 0)
        row0 = s;
      else if (s != row0)
        res.row_sums_consistent = false;
    }
    res.packets_per_sketch[node] = row0;
  }

  // Candidate recovery: cartesian product of the slice rows' heaviest
  // columns, filtered by ingress consistency, estimated by the min over
  // every row — the candidate's signature cells included, which is what
  // kills ghost keys (their signature hashes to a light cell w.h.p.).
  const auto E = static_cast<std::uint32_t>(params_.sketches.size());
  struct Cand {
    std::uint32_t fkey;
    std::uint64_t est;
    std::uint64_t excess;  // total cell mass above the min — collision load
    std::vector<std::uint32_t> cells;
  };
  std::vector<FlowEstimate> cands;
  for (std::uint32_t e = 0; e < E; ++e) {
    const NodeId node = params_.sketches[e];
    const auto it = counts.find(node);
    if (it == counts.end()) continue;
    const auto& cts = it->second;

    std::vector<std::vector<std::uint32_t>> heavy(d);
    for (std::uint32_t r = 0; r < d; ++r) {
      std::vector<std::uint32_t> order(w);
      for (std::uint32_t v = 0; v < w; ++v) order[v] = v;
      std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        const std::uint64_t ca = cts[r * w + a], cb = cts[r * w + b];
        return ca != cb ? ca > cb : a < b;
      });
      for (std::uint32_t x = 0; x < std::min(params_.cand_slices, w); ++x) {
        if (cts[r * w + order[x]] == 0) break;
        heavy[r].push_back(order[x]);
      }
    }
    if (std::any_of(heavy.begin(), heavy.end(),
                    [](const auto& h) { return h.empty(); }))
      continue;

    // Odometer over the d heavy-slice lists.
    std::vector<Cand> local;
    std::vector<std::size_t> idx(d, 0);
    while (true) {
      Cand c;
      c.fkey = 0;
      c.est = ~std::uint64_t{0};
      c.cells.reserve(d + params_.sig_rows);
      for (std::uint32_t r = 0; r < d; ++r) {
        const std::uint32_t v = heavy[r][idx[r]];
        c.fkey |= v << (r * params_.row_bits);
        c.cells.push_back(r * w + v);
        c.est = std::min(c.est, cts[r * w + v]);
      }
      for (std::uint32_t s = 0; s < params_.sig_rows; ++s) {
        const std::uint32_t sig =
            sim::flow_sig(c.fkey, params_.sig_rows * params_.row_bits);
        const std::uint32_t v = (sig >> (s * params_.row_bits)) & (w - 1);
        c.cells.push_back((d + s) * w + v);
        c.est = std::min(c.est, cts[(d + s) * w + v]);
      }
      if (c.est > 0 && sim::flow_ingress(c.fkey, E) == e) {
        c.excess = 0;
        for (const std::uint32_t cell : c.cells) c.excess += cts[cell] - c.est;
        local.push_back(std::move(c));
      }
      std::uint32_t r = 0;
      for (; r < d; ++r) {
        if (++idx[r] < heavy[r].size()) break;
        idx[r] = 0;
      }
      if (r == d) break;
    }

    // Residual peeling: a real flow's cells hold its own mass plus light
    // collision noise, so its excess is small; a ghost assembled from the
    // slices of several elephants inherits a different elephant per row and
    // carries their spread as excess.  Peel cleanest-first, subtracting each
    // accepted estimate from its cells — by the time a ghost is considered,
    // its constituents have reclaimed their mass and the residual collapses.
    // Reported estimates stay the un-peeled min, preserving the count-min
    // lower bound; peeling only selects which candidates are real.
    std::sort(local.begin(), local.end(), [](const Cand& a, const Cand& b) {
      if (a.excess != b.excess) return a.excess < b.excess;
      if (a.est != b.est) return a.est > b.est;
      return a.fkey < b.fkey;
    });
    std::vector<std::uint64_t> residual = cts;
    for (const Cand& c : local) {
      std::uint64_t rmin = ~std::uint64_t{0};
      for (const std::uint32_t cell : c.cells)
        rmin = std::min(rmin, residual[cell]);
      if (rmin < (c.est + 1) / 2) continue;  // mass already claimed: ghost
      for (const std::uint32_t cell : c.cells)
        residual[cell] -= std::min(residual[cell], c.est);
      cands.push_back({c.fkey, c.est, node});
    }
  }

  std::sort(cands.begin(), cands.end(), [](const FlowEstimate& a, const FlowEstimate& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate : a.fkey < b.fkey;
  });
  if (cands.size() > params_.k) cands.resize(params_.k);
  res.top = std::move(cands);

  res.stats = scope.delta();
  ++sweeps_done_;
  return res;
}

TopkValidation TopkService::validate(const TopkResult& r,
                                     const std::vector<sim::FlowSpec>& flows) const {
  TopkValidation v;
  const auto E = static_cast<std::uint32_t>(params_.sketches.size());

  std::map<std::uint32_t, std::uint64_t> truth;
  std::map<NodeId, std::uint64_t> pop;  // true N_s per sketch
  for (const sim::FlowSpec& f : flows) {
    truth[f.fkey] += f.packets;
    pop[params_.sketches[sim::flow_ingress(f.fkey, E)]] += f.packets;
    v.packets_total += f.packets;
  }
  v.flows_total = truth.size();

  // True top-K cutoff (ties at the cutoff all count as hits).
  std::vector<std::uint64_t> counts;
  counts.reserve(truth.size());
  for (const auto& [fk, c] : truth) counts.push_back(c);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const std::size_t kk = std::min<std::size_t>(params_.k, counts.size());
  v.true_topk_min = kk == 0 ? 0 : counts[kk - 1];

  std::size_t hits = 0;
  for (const FlowEstimate& fe : r.top) {
    const auto it = truth.find(fe.fkey);
    const std::uint64_t true_count = it == truth.end() ? 0 : it->second;
    if (true_count >= v.true_topk_min && v.true_topk_min > 0) ++hits;
    if (fe.estimate < true_count) v.lower_bound_ok = false;
    const std::uint64_t over = fe.estimate - std::min(fe.estimate, true_count);
    v.max_overestimate = std::max(v.max_overestimate, over);
    const auto allowed = static_cast<std::uint64_t>(
        std::ceil(params_.epsilon() * static_cast<double>(pop[fe.sketch])));
    v.worst_allowed = std::max(v.worst_allowed, allowed);
    if (over > allowed) v.error_bound_ok = false;
  }
  v.recall = kk == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(kk);
  return v;
}

void TopkService::workload_hists(const std::vector<sim::FlowSpec>& flows,
                                 Histogram& packets, Histogram& bytes) {
  for (const sim::FlowSpec& f : flows) {
    packets.record(f.packets);
    bytes.record(f.bytes);
  }
}

}  // namespace ss::obs
