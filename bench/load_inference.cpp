// Experiment LOAD (§4): "the smart counter concept introduced in this paper
// may also be used to infer network loads."  One traversal collects every
// port's traffic-counter residues; CRT over coprime moduli reconstructs
// exact counts below the product of the moduli.

#include "baseline/stats_polling.hpp"
#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("load_inference");
  util::Rng rng(bench::bench_seed(5));

  std::printf("(a) Inferred vs actual per-port egress loads (grid 4x5)\n");
  bench::hr();
  graph::Graph g = graph::make_grid(4, 5);
  core::LoadInferenceService svc(g);  // {13,15,16}: exact below 3120
  sim::Network net(g);
  svc.install(net);

  // Random traffic matrix.
  std::map<std::pair<graph::NodeId, graph::PortNo>, std::uint32_t> actual;
  for (int flows = 0; flows < 30; ++flows) {
    const auto u = static_cast<graph::NodeId>(rng.uniform(0, g.node_count() - 1));
    const auto p = static_cast<graph::PortNo>(rng.uniform(1, g.degree(u)));
    const auto cnt = static_cast<std::uint32_t>(rng.uniform(1, 150));
    svc.send_data(net, u, p, cnt);
    actual[{u, p}] += cnt;
  }

  auto res = svc.infer(net, 0);
  bench::row({"node", "port", "actual", "inferred", "ok"}, {6, 5, 8, 9, 4});
  bench::hr();
  std::size_t correct = 0, total = 0;
  for (auto& [key, load] : res.loads) {
    if (key.ingress) continue;
    const auto it = actual.find({key.node, key.port});
    const std::uint64_t truth = it == actual.end() ? 0 : it->second;
    ++total;
    if (truth == load) ++correct;
    if (truth != 0 || load != 0)
      bench::row({util::cat(key.node), util::cat(key.port), util::cat(truth),
                  util::cat(load), truth == load ? "yes" : "NO"},
                 {6, 5, 8, 9, 4});
  }
  bench::hr();
  std::printf("exact on %zu/%zu ports; out-of-band cost: %llu msgs (1 + 1)\n\n",
              correct, total,
              static_cast<unsigned long long>(res.stats.outband_total()));
  metrics.emit(obs::JsonObj()
                   .add("type", "bench")
                   .add("bench", "load_inference")
                   .add("series", "inferred_vs_actual")
                   .add("ports_exact", correct)
                   .add("ports_total", total)
                   .add("outband_msgs", res.stats.outband_total()));

  std::printf("(b) Census cost vs network size (vs per-switch stats polling)\n");
  bench::hr();
  bench::row({"n", "|E|", "outband SS", "poll msgs", "agree", "inband", "report B"},
             {5, 6, 10, 9, 6, 8, 9});
  bench::hr();
  // The shared rng2 stream only feeds graph construction: build the graphs
  // serially in the original draw order, then fan the census points out.
  util::Rng rng2(7);
  std::vector<bench::SweepGraph> census;
  for (std::size_t n : {10, 20, 40, 80})
    census.push_back({"reg4", n, graph::make_random_regular(n, 4, rng2)});

  struct CensusRow {
    std::uint64_t outband_ss = 0, poll_msgs = 0, inband = 0, wire_bytes = 0;
    bool agree = false;
  };
  const auto census_rows = bench::parallel_sweep(
      census, [](const bench::SweepGraph& sg, std::size_t) {
        CensusRow row;
        const graph::Graph& gg = sg.g;
        core::LoadInferenceService s2(gg, {13, 16});
        sim::Network nn(gg);
        s2.install(nn);
        s2.send_data(nn, 0, 1, 9);
        // The controller-driven alternative: poll every switch's port stats.
        baseline::StatsPolling polling(gg);
        auto truth = polling.poll(nn);
        auto r = s2.infer(nn, 0);
        bool agree = r.complete;
        for (auto& [key, count] : truth.loads)
          if (!key.ingress)
            agree = agree && r.loads.count(key) && r.loads.at(key) == count;
        row.outband_ss = r.stats.outband_total();
        row.poll_msgs = truth.request_msgs + truth.reply_msgs;
        row.agree = agree;
        row.inband = r.stats.inband_msgs;
        row.wire_bytes = r.stats.max_wire_bytes;
        return row;
      });
  for (std::size_t i = 0; i < census.size(); ++i) {
    const auto n = census[i].n;
    const auto edges = census[i].g.edge_count();
    const CensusRow& r = census_rows[i];
    bench::row({util::cat(n), util::cat(edges), util::cat(r.outband_ss),
                util::cat(r.poll_msgs), r.agree ? "yes" : "NO",
                util::cat(r.inband), util::cat(r.wire_bytes)},
               {5, 6, 10, 9, 6, 8, 9});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "load_inference")
                     .add("series", "census_cost")
                     .add("n", n)
                     .add("edges", edges)
                     .add("outband_ss", r.outband_ss)
                     .add("poll_msgs", r.poll_msgs)
                     .add("agree", r.agree)
                     .add("inband_msgs", r.inband)
                     .add("max_wire_bytes", r.wire_bytes));
  }
  bench::hr();
  std::printf(
      "A full load census costs a constant 2 out-of-band messages; the\n"
      "controller-driven equivalent polls port-stats from every switch\n"
      "(O(n) request/replies per round).\n");
  return 0;
}
