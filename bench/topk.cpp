// Top-K telemetry bench: cost and fidelity of sketch-based heavy-hitter
// counting on compiled SmartSouth pipelines.
//
// Workload: torus topologies with stride-placed sketch switches; a
// deterministic heavy-tailed flow mix (sim::make_flow_workload) pumped
// through the kEthFlow ingest path; one DFS sweep reads every count-min
// cell into the label stack and the decoder reports top-K with CRT cell
// reconstruction, ghost-suppressing signature rows, and residual peeling.
//
// Output: stdout table; BENCH_topk.json; topk.metrics.jsonl sidecar.
//   bench_topk [--n N] [--mice M] [--out PATH] [--check BASELINE]
// --check compares the DETERMINISTIC fields (flows, packets, entries,
// sweep_msgs, fragments, recall_pct) of each (n, mice) row against a
// committed baseline and exits 1 on drift — decode fidelity is part of the
// contract, not just throughput.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/topk.hpp"
#include "sim/flowgen.hpp"
#include "sim/network.hpp"

using namespace ss;

namespace {

struct Row {
  std::size_t n = 0;
  std::uint32_t mice = 0;
  // Deterministic (checked against the committed baseline):
  std::uint64_t flows = 0;       // distinct keys after aggregation
  std::uint64_t packets = 0;     // injected packets
  std::uint64_t entries = 0;     // flow entries on a sketch switch
  std::uint64_t sweep_msgs = 0;  // in-band messages of one sweep
  std::uint64_t fragments = 0;   // per-switch read-out reports
  std::uint64_t recall_pct = 0;  // round(recall * 100) vs ground truth
  // Timing (informational):
  double pump_us = 0.0;   // inject + drain every flow packet
  double sweep_us = 0.0;  // DFS read-out + decode + validate
  double pump_mpps() const {
    return pump_us > 0.0 ? double(packets) / pump_us : 0.0;
  }
};

Row measure_point(std::size_t n, std::uint32_t mice) {
  Row r;
  r.n = n;
  r.mice = mice;
  std::size_t rows_t = 3;
  while ((rows_t + 1) * (rows_t + 1) <= n) ++rows_t;
  while (rows_t > 3 && n % rows_t != 0) --rows_t;
  const graph::Graph g = graph::make_torus(rows_t, n / rows_t);

  obs::TopkParams tp;
  const std::uint32_t sketches = 4;
  for (std::uint32_t i = 0; i < sketches; ++i)
    tp.sketches.push_back(static_cast<graph::NodeId>(
        std::uint64_t{i} * g.node_count() / sketches));
  tp.k = 10;
  obs::TopkService svc(g, tp);

  sim::FlowWorkloadConfig fc;
  fc.seed = bench::bench_seed(17);
  fc.key_bits = tp.rows * tp.row_bits;
  fc.elephants = 32;
  fc.mice = mice;
  fc.elephant_min = 16384;
  fc.elephant_max = 65536;
  const std::vector<sim::FlowSpec> flows = sim::make_flow_workload(fc);
  r.flows = flows.size();
  for (const sim::FlowSpec& f : flows) r.packets += f.packets;

  sim::Network net(g, 1, bench::bench_seed(18));
  svc.install(net);
  r.entries = net.sw(tp.sketches[0]).total_flow_entries();

  const auto t0 = std::chrono::steady_clock::now();
  svc.pump(net, flows);
  const auto t1 = std::chrono::steady_clock::now();
  const obs::TopkResult res = svc.sweep(net, 0);
  const obs::TopkValidation val = svc.validate(res, flows);
  const auto t2 = std::chrono::steady_clock::now();

  r.sweep_msgs = res.stats.inband_msgs;
  r.fragments = res.fragments;
  r.recall_pct = static_cast<std::uint64_t>(val.recall * 100.0 + 0.5);
  if (!res.complete || !res.row_sums_consistent || !val.lower_bound_ok ||
      !val.error_bound_ok) {
    std::fprintf(stderr, "FATAL: n=%zu mice=%u sketch invariant broken\n", n,
                 mice);
    std::exit(1);
  }
  r.pump_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  r.sweep_us = std::chrono::duration<double, std::micro>(t2 - t1).count();
  return r;
}

int check_baseline(const std::vector<Row>& rows, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "--check: cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json_parse(ss.str());
  if (!doc || !doc->is_object() || doc->get("rows") == nullptr ||
      !doc->get("rows")->is_array()) {
    std::fprintf(stderr, "--check: %s is not a BENCH_topk.json document\n",
                 path.c_str());
    return 1;
  }
  int compared = 0, failed = 0;
  for (const Row& r : rows) {
    for (const obs::JsonValue& b : doc->get("rows")->array) {
      if (b.u64("n") != r.n || b.u64("mice") != r.mice) continue;
      ++compared;
      const bool ok = b.u64("flows") == r.flows &&
                      b.u64("packets") == r.packets &&
                      b.u64("entries") == r.entries &&
                      b.u64("sweep_msgs") == r.sweep_msgs &&
                      b.u64("fragments") == r.fragments &&
                      b.u64("recall_pct") == r.recall_pct;
      if (!ok) {
        ++failed;
        std::fprintf(
            stderr,
            "DRIFT n=%zu mice=%u: flows %llu->%llu packets %llu->%llu "
            "entries %llu->%llu msgs %llu->%llu frags %llu->%llu "
            "recall %llu->%llu\n",
            r.n, r.mice, (unsigned long long)b.u64("flows"),
            (unsigned long long)r.flows, (unsigned long long)b.u64("packets"),
            (unsigned long long)r.packets,
            (unsigned long long)b.u64("entries"), (unsigned long long)r.entries,
            (unsigned long long)b.u64("sweep_msgs"),
            (unsigned long long)r.sweep_msgs,
            (unsigned long long)b.u64("fragments"),
            (unsigned long long)r.fragments,
            (unsigned long long)b.u64("recall_pct"),
            (unsigned long long)r.recall_pct);
      }
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "--check: no baseline rows matched this run\n");
    return 1;
  }
  std::fprintf(stderr, "--check: %d row(s) compared against %s, %d drifted\n",
               compared, path.c_str(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {36, 100};
  std::vector<std::uint32_t> mice_counts = {20000, 50000};
  std::string out_path = "BENCH_topk.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--n")
      sizes = {static_cast<std::size_t>(std::strtoul(next(), nullptr, 10))};
    else if (a == "--mice")
      mice_counts = {
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10))};
    else if (a == "--out")
      out_path = next();
    else if (a == "--check")
      check_path = next();
    else {
      std::fprintf(stderr,
                   "usage: bench_topk [--n N] [--mice M] [--out PATH] "
                   "[--check BASELINE]\n");
      return 2;
    }
  }

  bench::Metrics metrics("topk");
  const std::vector<int> widths = {6, 7, 7, 9, 8, 9, 6, 7, 11, 10, 7};
  bench::row({"n", "mice", "flows", "packets", "entries", "msgs", "frags",
              "recall", "pump_us", "sweep_us", "mpps"},
             widths);
  bench::hr(110);

  struct Point {
    std::size_t n;
    std::uint32_t mice;
  };
  std::vector<Point> points;
  for (const std::size_t n : sizes)
    for (const std::uint32_t m : mice_counts) points.push_back({n, m});

  // Timing benches stay serial by default (workers would contend for cores);
  // SS_BENCH_THREADS>1 opts in — the deterministic columns are unaffected.
  const std::vector<Row> rows = bench::parallel_sweep(
      points,
      [&](const Point& p, std::size_t) { return measure_point(p.n, p.mice); },
      std::getenv("SS_BENCH_THREADS") != nullptr ? 0u : 1u);

  obs::JsonArr arr;
  for (const Row& r : rows) {
    char pu[32], su[32], mp[32];
    std::snprintf(pu, sizeof pu, "%.0f", r.pump_us);
    std::snprintf(su, sizeof su, "%.0f", r.sweep_us);
    std::snprintf(mp, sizeof mp, "%.2f", r.pump_mpps());
    bench::row({std::to_string(r.n), std::to_string(r.mice),
                std::to_string(r.flows), std::to_string(r.packets),
                std::to_string(r.entries), std::to_string(r.sweep_msgs),
                std::to_string(r.fragments), std::to_string(r.recall_pct),
                pu, su, mp},
               widths);

    obs::JsonObj o;
    o.add("n", r.n);
    o.add("mice", r.mice);
    o.add("flows", r.flows);
    o.add("packets", r.packets);
    o.add("entries", r.entries);
    o.add("sweep_msgs", r.sweep_msgs);
    o.add("fragments", r.fragments);
    o.add("recall_pct", r.recall_pct);
    o.add("pump_us", r.pump_us);
    o.add("sweep_us", r.sweep_us);
    arr.push(o);

    obs::JsonObj m;
    m.add("type", "topk");
    m.add("n", r.n);
    m.add("mice", r.mice);
    m.add("flows", r.flows);
    m.add("packets", r.packets);
    m.add("recall_pct", r.recall_pct);
    m.add("pump_us", r.pump_us);
    m.add("sweep_us", r.sweep_us);
    metrics.emit(m);
  }

  if (!check_path.empty()) {
    const int rc = check_baseline(rows, check_path);
    if (rc != 0) return rc;
  }

  if (!out_path.empty()) {
    obs::JsonObj doc;
    doc.add("schema", "ss.bench.topk.v1");
    doc.add("bench", "topk");
    doc.add_u("seed", bench::bench_seed());
    doc.add_raw("rows", arr.str());
    std::ofstream out(out_path, std::ios::trunc);
    out << doc.str() << "\n";
    std::fprintf(stderr, "baseline: %s\n", out_path.c_str());
  }
  if (metrics.ok())
    std::fprintf(stderr, "metrics: %s\n", metrics.path().c_str());
  return 0;
}
