// Experiment BASE: SmartSouth vs the controller-driven status quo.
// The paper's motivation is reducing control-plane load; these series
// quantify it against the baselines the paper references:
//   snapshot  vs LLDP TopologyService discovery ([1])
//   anycast   vs controller-computed routing (per-hop flow-mods)
//   blackhole vs controller per-link echo probing
//   critical  vs discovery + controller-side Tarjan

#include "baseline/controller_anycast.hpp"
#include "baseline/controller_critical.hpp"
#include "baseline/lldp_discovery.hpp"
#include "baseline/probe_blackhole.hpp"
#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

namespace {

struct BaseRow {
  std::uint64_t ss_snap = 0, lldp = 0;
  std::uint64_t ss_any = 0, ctrl_any = 0;
  std::uint64_t ss_bh = 0, probe_bh = 0;
  std::uint64_t ss_crit = 0, ctrl_crit = 0;
};

}  // namespace

int main() {
  bench::Metrics metrics("baselines");
  std::printf("Controller load: out-of-band messages per operation\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "snap SS", "snap LLDP", "any SS",
              "any CTRL", "bh SS", "bh PROBE", "crit SS", "crit CTRL"},
             {12, 4, 5, 8, 9, 7, 8, 6, 8, 8, 9});
  bench::hr();

  const auto sweep = bench::standard_sweep();
  // Pre-draw the per-point blackhole victim from the shared stream, in the
  // order the serial loop consumed it, before fanning out.
  util::Rng rng(bench::bench_seed(2));
  std::vector<graph::EdgeId> victims;
  victims.reserve(sweep.size());
  for (const auto& sg : sweep)
    victims.push_back(
        static_cast<graph::EdgeId>(rng.uniform(0, sg.g.edge_count() - 1)));

  const auto rows = bench::parallel_sweep(sweep, [&](const bench::SweepGraph& sg,
                                                     std::size_t i) {
    BaseRow row;
    const graph::Graph& g = sg.g;
    const auto n = g.node_count();

    // Snapshot vs LLDP discovery.
    core::SnapshotService snap(g);
    sim::Network net1(g);
    snap.install(net1);
    row.ss_snap = snap.run(net1, 0).stats.outband_total();
    baseline::LldpDiscovery lldp(g);
    sim::Network net2(g);
    lldp.install(net2);
    row.lldp = lldp.run(net2).stats.outband_total();

    // Anycast vs controller routing (same member set, same request).
    core::AnycastGroupSpec gs;
    gs.gid = 1;
    gs.members[static_cast<graph::NodeId>(n - 1)] = 1;
    core::AnycastService any(g, {gs});
    sim::Network net3(g);
    any.install(net3);
    // Out-of-band beyond the request injection itself.
    row.ss_any = any.run(net3, 0, 1).stats.outband_total() - 1;
    baseline::ControllerAnycast cany(g, {{1, {static_cast<graph::NodeId>(n - 1)}}});
    sim::Network net4(g);
    const auto ca = cany.run(net4, 0, 1);
    row.ctrl_any = ca.control_messages() - 1;

    // Blackhole: smart counters vs per-link echo probing.
    const graph::EdgeId victim = victims[i];
    core::BlackholeCountersService bh(g);
    sim::Network net5(g);
    bh.install(net5);
    net5.set_blackhole_from(victim, g.edge(victim).a.node, true);
    row.ss_bh = bh.run(net5, 0).stats.outband_total();
    baseline::ProbeBlackhole probe(g);
    sim::Network net6(g);
    probe.install(net6);
    net6.set_blackhole_from(victim, g.edge(victim).a.node, true);
    row.probe_bh = probe.run(net6).stats.outband_total();

    // Critical node.
    core::CriticalNodeService crit(g);
    sim::Network net7(g);
    crit.install(net7);
    row.ss_crit = crit.run(net7, 0).stats.outband_total();
    baseline::ControllerCritical cc(g);
    sim::Network net8(g);
    cc.install(net8);
    row.ctrl_crit = cc.run(net8, 0).stats.outband_total();
    return row;
  });

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const bench::SweepGraph& sg = sweep[i];
    const BaseRow& r = rows[i];
    bench::row({sg.family, util::cat(sg.g.node_count()),
                util::cat(sg.g.edge_count()), util::cat(r.ss_snap),
                util::cat(r.lldp), util::cat(r.ss_any), util::cat(r.ctrl_any),
                util::cat(r.ss_bh), util::cat(r.probe_bh), util::cat(r.ss_crit),
                util::cat(r.ctrl_crit)},
               {12, 4, 5, 8, 9, 7, 8, 6, 8, 8, 9});

    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "baselines")
                     .add("family", sg.family)
                     .add("n", sg.g.node_count())
                     .add("edges", sg.g.edge_count())
                     .add("snapshot_ss", r.ss_snap)
                     .add("snapshot_lldp", r.lldp)
                     .add("anycast_ss", r.ss_any)
                     .add("anycast_ctrl", r.ctrl_any)
                     .add("blackhole_ss", r.ss_bh)
                     .add("blackhole_probe", r.probe_bh)
                     .add("critical_ss", r.ss_crit)
                     .add("critical_ctrl", r.ctrl_crit));
  }
  bench::hr();

  // --- Latency: the other side of the coin.  In-band anycast follows the
  // DFS order (possibly much longer than the shortest path) but starts
  // immediately; controller routing takes the shortest path but pays the
  // control-plane round trip first (the latency concern the paper cites).
  std::printf("\nAnycast delivery latency (link delay = 1; controller RTT "
              "modeled as 50 link delays)\n");
  bench::hr();
  bench::row({"topology", "n", "in-band t", "ctrl t (path+RTT)", "winner"},
             {12, 4, 10, 17, 7});
  bench::hr();
  for (const auto& sg : bench::standard_sweep()) {
    if (sg.n > 40) continue;
    const graph::Graph& g = sg.g;
    const auto target = static_cast<graph::NodeId>(g.node_count() - 1);
    core::AnycastGroupSpec gs;
    gs.gid = 1;
    gs.members[target] = 1;
    core::AnycastService any(g, {gs});
    sim::Network net(g);
    any.install(net);
    const auto t0 = net.now();
    auto res = any.run(net, 0, 1);
    const auto inband_t = net.now() - t0;
    const auto dist = graph::bfs_distance(g, 0)[target];
    const std::uint64_t ctrl_t = 50 + dist;  // RTT + shortest-path delivery
    bench::row({sg.family, util::cat(sg.n), util::cat(inband_t),
                util::cat(ctrl_t), inband_t <= ctrl_t ? "inband" : "ctrl"},
               {12, 4, 10, 17, 7});
    (void)res;
  }
  bench::hr();
  std::printf(
      "SmartSouth's controller load is O(1) per operation across every\n"
      "service; all controller-driven baselines grow with |E| (discovery,\n"
      "probing) or path length (flow-mod routing).  This is the paper's\n"
      "core quantitative claim.\n");
  return 0;
}
