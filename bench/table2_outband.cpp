// Experiment T2-outband: reproduce the OUT-OF-BAND message column of
// Table 2 by measurement.
//
// Paper's rows (out-band #msgs):
//   Snapshot 1+1   Anycast 0   Priocast 0   Blackhole1 <= 2 log|E|
//   Blackhole2 3   Critical 2
//
// "Out-of-band" counts controller<->switch messages.  For anycast/priocast
// the request itself is injected by a host; we subtract the one packet-out
// our driver uses to model that injection (column "req").

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("table2_outband");
  std::printf("Table 2 reproduction: out-of-band message counts\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "snapshot", "(2)", "anycast-req", "(0)",
              "priocast-req", "(0)", "bh1", "<=2logE", "bh2", "(3)", "critical",
              "(2)"},
             {14, 4, 5, 9, 4, 11, 4, 12, 4, 4, 8, 4, 4, 8, 4});
  bench::hr();

  // The victim edge for the blackhole rows comes from a shared rng stream,
  // one draw per point — pre-draw them serially so the flattened parallel
  // sweep consumes the exact same sequence, then fan out the measurements.
  const auto sweep = bench::standard_sweep();
  util::Rng rng(bench::bench_seed(10));
  std::vector<graph::EdgeId> victims;
  victims.reserve(sweep.size());
  for (const auto& sg : sweep)
    victims.push_back(
        static_cast<graph::EdgeId>(rng.uniform(0, sg.g.edge_count() - 1)));

  struct PointResult {
    std::uint64_t snap = 0;
    std::uint64_t any = 0;
    std::uint64_t prio = 0;
    std::uint64_t bh1 = 0;
    std::uint64_t bh2 = 0;
    std::uint64_t crit = 0;
  };
  const auto results = bench::parallel_sweep(
      sweep, [&](const bench::SweepGraph& sg, std::size_t i) {
        const graph::Graph& g = sg.g;
        const auto n = g.node_count();
        const auto E = g.edge_count();
        PointResult out;

        core::SnapshotService snap(g);
        sim::Network net1(g);
        snap.install(net1);
        out.snap = snap.run(net1, 0).stats.outband_total();

        core::AnycastGroupSpec gs;
        gs.gid = 1;
        gs.members[static_cast<graph::NodeId>(n - 1)] = 1;
        core::AnycastService any(g, {gs});
        sim::Network net2(g);
        any.install(net2);
        out.any = any.run(net2, 0, 1).stats.outband_total();

        core::PriocastService prio(g, {gs});
        sim::Network net3(g);
        prio.install(net3);
        out.prio = prio.run(net3, 0, 1).stats.outband_total();

        // Blackhole variant 1 with a planted failure (worst case for probes).
        core::BlackholeTtlService bh1(g);
        sim::Network net4(g);
        bh1.install(net4);
        const graph::EdgeId victim = victims[i];
        net4.set_blackhole_from(victim, g.edge(victim).a.node, true);
        const auto max_ttl =
            static_cast<std::uint32_t>(std::min<std::size_t>(4 * E + 4, 255));
        out.bh1 = bh1.run(net4, 0, max_ttl).stats.outband_total();

        core::BlackholeCountersService bh2(g);
        sim::Network net5(g);
        bh2.install(net5);
        net5.set_blackhole_from(victim, g.edge(victim).a.node, true);
        out.bh2 = bh2.run(net5, 0).stats.outband_total();

        core::CriticalNodeService crit(g);
        sim::Network net6(g);
        crit.install(net6);
        out.crit = crit.run(net6, 0).stats.outband_total();
        return out;
      });

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& sg = sweep[i];
    const auto& r = results[i];
    const auto n = sg.g.node_count();
    const auto E = sg.g.edge_count();
    const double two_log_e = 2.0 * std::log2(static_cast<double>(4 * E + 4));

    bench::row(
        {sg.family, util::cat(n), util::cat(E), util::cat(r.snap), "2",
         util::cat(r.any - 1), "0", util::cat(r.prio - 1), "0",
         util::cat(r.bh1), util::cat(static_cast<int>(two_log_e)),
         util::cat(r.bh2), "3", util::cat(r.crit), "2"},
        {14, 4, 5, 9, 4, 11, 4, 12, 4, 4, 8, 4, 4, 8, 4});

    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "table2_outband")
                     .add("family", sg.family)
                     .add("n", n)
                     .add("edges", E)
                     .add("snapshot_outband", r.snap)
                     .add("anycast_outband", r.any - 1)
                     .add("priocast_outband", r.prio - 1)
                     .add("bh1_outband", r.bh1)
                     .add("bh2_outband", r.bh2)
                     .add("critical_outband", r.crit)
                     .add("bound_2loge", two_log_e));
  }
  bench::hr();
  std::printf(
      "bh1 column counts every probe packet-out plus every report for a\n"
      "planted blackhole (the paper's bound is 2 log|E| probes).\n");
  return 0;
}
