// Ablation studies for the design choices DESIGN.md calls out:
//  (a) FAST-FAILOVER port scanning — the robustness mechanism;
//  (b) the snapshot's non-tree-edge dedup ("to save packet header space");
//  (c) the blackhole smart-counter modulus (overflow aliasing);
//  (d) single-shot vs retrying drivers under MID-RUN failures (outside the
//      paper's model, handled by re-triggering).

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "graph/algorithms.hpp"
#include "util/strings.hpp"

using namespace ss;

namespace {

constexpr int kFfTrials = 40;
constexpr int kRetryTrials = 40;
const std::vector<double> kFailRates{0.0, 0.05, 0.1, 0.2, 0.3, 0.4};
const std::vector<int> kMidRunFails{0, 1, 2, 4};

}  // namespace

int main() {
  bench::Metrics metrics("ablation");
  util::Rng rng(bench::bench_seed(1));
  graph::Graph torus = graph::make_torus(5, 5);

  // Pre-draw everything the shared stream feeds, in the exact order the
  // serial loops consumed it: part (a) down-lists first, part (d) failure
  // plans second.  The sweeps themselves then fan out over parallel_sweep.
  std::vector<std::vector<std::vector<graph::EdgeId>>> ff_down(
      kFailRates.size());
  for (std::size_t i = 0; i < kFailRates.size(); ++i) {
    ff_down[i].resize(kFfTrials);
    for (int t = 0; t < kFfTrials; ++t)
      for (graph::EdgeId e = 0; e < torus.edge_count(); ++e)
        if (rng.chance(kFailRates[i])) ff_down[i][t].push_back(e);
  }
  using FailPlan = std::vector<std::pair<graph::EdgeId, sim::Time>>;
  std::vector<std::vector<FailPlan>> midrun_plans(kMidRunFails.size());
  for (std::size_t i = 0; i < kMidRunFails.size(); ++i) {
    midrun_plans[i].resize(kRetryTrials);
    for (int t = 0; t < kRetryTrials; ++t)
      for (int k = 0; k < kMidRunFails[i]; ++k)
        midrun_plans[i][t].emplace_back(
            static_cast<graph::EdgeId>(rng.uniform(0, torus.edge_count() - 1)),
            static_cast<sim::Time>(rng.uniform(1, 30)));
  }

  std::printf("(a) Fast-failover ablation: traversal success rate vs pre-run "
              "link failures\n    (torus 5x5, 40 trials per cell)\n");
  bench::hr();
  bench::row({"failure rate", "with FF", "without FF"}, {12, 9, 11});
  bench::hr();
  const auto ff_rows = bench::parallel_sweep(
      kFailRates, [&](double /*rate*/, std::size_t i) {
        std::pair<int, int> ok{0, 0};  // {with FF, without FF}
        for (int t = 0; t < kFfTrials; ++t) {
          for (bool ff : {true, false}) {
            core::PlainTraversal svc(torus, true, ff);
            sim::Network net(torus);
            svc.install(net);
            for (auto e : ff_down[i][t]) net.set_link_up(e, false);
            if (svc.run(net, 0)) (ff ? ok.first : ok.second) += 1;
          }
        }
        return ok;
      });
  for (std::size_t i = 0; i < kFailRates.size(); ++i) {
    const auto [ok_ff, ok_noff] = ff_rows[i];
    bench::row({util::cat(kFailRates[i]),
                util::cat(100 * ok_ff / kFfTrials, "%"),
                util::cat(100 * ok_noff / kFfTrials, "%")},
               {12, 9, 11});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "ablation")
                     .add("series", "fast_failover")
                     .add("failure_rate", kFailRates[i])
                     .add("ok_with_ff", ok_ff)
                     .add("ok_without_ff", ok_noff)
                     .add("trials", kFfTrials));
  }
  bench::hr();

  std::printf("\n(b) Snapshot dedup ablation: record-stack bytes "
              "(max packet on the wire)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "non-tree", "dedup", "no-dedup", "saved"},
             {12, 4, 5, 8, 7, 9, 6});
  bench::hr();
  const auto sweep = bench::standard_sweep();
  const auto dedup_rows = bench::parallel_sweep(
      sweep, [](const bench::SweepGraph& sg, std::size_t) {
        core::SnapshotService a(sg.g, 0, true), b(sg.g, 0, false);
        sim::Network na(sg.g), nb(sg.g);
        a.install(na);
        b.install(nb);
        return std::pair<std::uint64_t, std::uint64_t>{
            a.run(na, 0).stats.max_wire_bytes, b.run(nb, 0).stats.max_wire_bytes};
      });
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const bench::SweepGraph& sg = sweep[i];
    const auto [dedup_bytes, nodedup_bytes] = dedup_rows[i];
    bench::row({sg.family, util::cat(sg.n), util::cat(sg.g.edge_count()),
                util::cat(sg.g.edge_count() - (sg.g.node_count() - 1)),
                util::cat(dedup_bytes), util::cat(nodedup_bytes),
                util::cat(nodedup_bytes - dedup_bytes)},
               {12, 4, 5, 8, 7, 9, 6});
  }
  bench::hr();

  std::printf("\n(c) Blackhole counter modulus: false reports on CLEAN "
              "networks (overflow aliasing)\n");
  bench::hr();
  bench::row({"modulus", "false reports (gnp n=20)", "false reports (torus 4x4)"},
             {8, 24, 25});
  bench::hr();
  util::Rng rng2(3);
  graph::Graph gnp = graph::make_gnp_connected(20, 0.25, rng2);
  graph::Graph torus44 = graph::make_torus(4, 4);
  for (std::uint32_t mod : {2u, 3u, 4u, 6u, 8u, 16u}) {
    std::vector<std::string> cols{util::cat(mod)};
    for (const graph::Graph* g : {&gnp, &torus44}) {
      core::BlackholeCountersService svc(*g, mod);
      sim::Network net(*g);
      svc.install(net);
      auto res = svc.run(net, 0);
      cols.push_back(util::cat(res.reports.size()));
    }
    bench::row(cols, {8, 24, 25});
  }
  bench::hr();
  std::printf("Healthy sender-side counters reach up to 8; any modulus whose\n"
              "residues alias a healthy count to 1 produces false positives.\n");

  std::printf("\n(d) Mid-run failures: single-shot vs retrying driver "
              "(torus 5x5, 40 trials)\n");
  bench::hr();
  bench::row({"mid-run fails", "single-shot ok", "retry(5) ok", "avg attempts"},
             {13, 14, 11, 12});
  bench::hr();
  struct RetryRow {
    int ok1 = 0, ok2 = 0;
    double attempts_sum = 0;
  };
  const auto retry_rows = bench::parallel_sweep(
      kMidRunFails, [&](int /*fails*/, std::size_t i) {
        RetryRow row;
        core::SnapshotService svc(torus);
        for (int t = 0; t < kRetryTrials; ++t) {
          const FailPlan& plan = midrun_plans[i][t];
          {
            sim::Network net(torus);
            svc.install(net);
            for (auto& [e, tm] : plan) net.schedule_link_state(e, false, tm);
            if (svc.run(net, 0).complete) ++row.ok1;
          }
          {
            sim::Network net(torus);
            svc.install(net);
            for (auto& [e, tm] : plan) net.schedule_link_state(e, false, tm);
            std::uint32_t att = 0;
            if (svc.run_with_retries(net, 0, 5, &att).complete) ++row.ok2;
            row.attempts_sum += att;
          }
        }
        return row;
      });
  for (std::size_t i = 0; i < kMidRunFails.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f",
                  retry_rows[i].attempts_sum / kRetryTrials);
    bench::row({util::cat(kMidRunFails[i]),
                util::cat(100 * retry_rows[i].ok1 / kRetryTrials, "%"),
                util::cat(100 * retry_rows[i].ok2 / kRetryTrials, "%"), buf},
               {13, 14, 11, 12});
  }
  bench::hr();
  std::printf("Retrying with fresh trigger packets recovers from failures the\n"
              "paper's model excludes — each attempt re-reads port liveness.\n");
  return 0;
}
