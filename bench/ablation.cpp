// Ablation studies for the design choices DESIGN.md calls out:
//  (a) FAST-FAILOVER port scanning — the robustness mechanism;
//  (b) the snapshot's non-tree-edge dedup ("to save packet header space");
//  (c) the blackhole smart-counter modulus (overflow aliasing);
//  (d) single-shot vs retrying drivers under MID-RUN failures (outside the
//      paper's model, handled by re-triggering).

#include "bench/bench_util.hpp"
#include "core/services.hpp"
#include "graph/algorithms.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("ablation");
  util::Rng rng(bench::bench_seed(1));

  std::printf("(a) Fast-failover ablation: traversal success rate vs pre-run "
              "link failures\n    (torus 5x5, 40 trials per cell)\n");
  bench::hr();
  bench::row({"failure rate", "with FF", "without FF"}, {12, 9, 11});
  bench::hr();
  graph::Graph torus = graph::make_torus(5, 5);
  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    int ok_ff = 0, ok_noff = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      std::vector<graph::EdgeId> down;
      for (graph::EdgeId e = 0; e < torus.edge_count(); ++e)
        if (rng.chance(rate)) down.push_back(e);
      for (bool ff : {true, false}) {
        core::PlainTraversal svc(torus, true, ff);
        sim::Network net(torus);
        svc.install(net);
        for (auto e : down) net.set_link_up(e, false);
        if (svc.run(net, 0)) (ff ? ok_ff : ok_noff) += 1;
      }
    }
    bench::row({util::cat(rate), util::cat(100 * ok_ff / trials, "%"),
                util::cat(100 * ok_noff / trials, "%")},
               {12, 9, 11});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "ablation")
                     .add("series", "fast_failover")
                     .add("failure_rate", rate)
                     .add("ok_with_ff", ok_ff)
                     .add("ok_without_ff", ok_noff)
                     .add("trials", trials));
  }
  bench::hr();

  std::printf("\n(b) Snapshot dedup ablation: record-stack bytes "
              "(max packet on the wire)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "non-tree", "dedup", "no-dedup", "saved"},
             {12, 4, 5, 8, 7, 9, 6});
  bench::hr();
  for (const auto& sg : bench::standard_sweep()) {
    core::SnapshotService a(sg.g, 0, true), b(sg.g, 0, false);
    sim::Network na(sg.g), nb(sg.g);
    a.install(na);
    b.install(nb);
    auto ra = a.run(na, 0);
    auto rb = b.run(nb, 0);
    bench::row({sg.family, util::cat(sg.n), util::cat(sg.g.edge_count()),
                util::cat(sg.g.edge_count() - (sg.g.node_count() - 1)),
                util::cat(ra.stats.max_wire_bytes),
                util::cat(rb.stats.max_wire_bytes),
                util::cat(rb.stats.max_wire_bytes - ra.stats.max_wire_bytes)},
               {12, 4, 5, 8, 7, 9, 6});
  }
  bench::hr();

  std::printf("\n(c) Blackhole counter modulus: false reports on CLEAN "
              "networks (overflow aliasing)\n");
  bench::hr();
  bench::row({"modulus", "false reports (gnp n=20)", "false reports (torus 4x4)"},
             {8, 24, 25});
  bench::hr();
  util::Rng rng2(3);
  graph::Graph gnp = graph::make_gnp_connected(20, 0.25, rng2);
  graph::Graph torus44 = graph::make_torus(4, 4);
  for (std::uint32_t mod : {2u, 3u, 4u, 6u, 8u, 16u}) {
    std::vector<std::string> cols{util::cat(mod)};
    for (const graph::Graph* g : {&gnp, &torus44}) {
      core::BlackholeCountersService svc(*g, mod);
      sim::Network net(*g);
      svc.install(net);
      auto res = svc.run(net, 0);
      cols.push_back(util::cat(res.reports.size()));
    }
    bench::row(cols, {8, 24, 25});
  }
  bench::hr();
  std::printf("Healthy sender-side counters reach up to 8; any modulus whose\n"
              "residues alias a healthy count to 1 produces false positives.\n");

  std::printf("\n(d) Mid-run failures: single-shot vs retrying driver "
              "(torus 5x5, 40 trials)\n");
  bench::hr();
  bench::row({"mid-run fails", "single-shot ok", "retry(5) ok", "avg attempts"},
             {13, 14, 11, 12});
  bench::hr();
  for (int fails : {0, 1, 2, 4}) {
    int ok1 = 0, ok2 = 0;
    double attempts_sum = 0;
    const int trials = 40;
    core::SnapshotService svc(torus);
    for (int t = 0; t < trials; ++t) {
      std::vector<std::pair<graph::EdgeId, sim::Time>> plan;
      for (int k = 0; k < fails; ++k)
        plan.emplace_back(
            static_cast<graph::EdgeId>(rng.uniform(0, torus.edge_count() - 1)),
            static_cast<sim::Time>(rng.uniform(1, 30)));
      {
        sim::Network net(torus);
        svc.install(net);
        for (auto& [e, tm] : plan) net.schedule_link_state(e, false, tm);
        if (svc.run(net, 0).complete) ++ok1;
      }
      {
        sim::Network net(torus);
        svc.install(net);
        for (auto& [e, tm] : plan) net.schedule_link_state(e, false, tm);
        std::uint32_t att = 0;
        if (svc.run_with_retries(net, 0, 5, &att).complete) ++ok2;
        attempts_sum += att;
      }
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", attempts_sum / trials);
    bench::row({util::cat(fails), util::cat(100 * ok1 / trials, "%"),
                util::cat(100 * ok2 / trials, "%"), buf},
               {13, 14, 11, 12});
  }
  bench::hr();
  std::printf("Retrying with fresh trigger packets recovers from failures the\n"
              "paper's model excludes — each attempt re-reads port liveness.\n");
  return 0;
}
