// Experiments BH-1 and BH-2 (§3.3): the two blackhole-detection solutions.
//
//  BH-1  TTL binary search: probes used vs the paper's 2 log|E| bound,
//        plus localization accuracy.
//  BH-2  smart counters: exactly 2 injected packets + 1 report ("two
//        out-band packets"), localization accuracy, and in-band cost ~4|E|.

#include <cmath>

#include "bench/bench_util.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("blackhole");
  util::Rng rng(bench::bench_seed(3));

  std::printf("BH-1: TTL binary search (averaged over 10 planted blackholes)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "avg probes", "2log(4E)", "avg outband",
              "localized"},
             {12, 5, 6, 10, 9, 11, 9});
  bench::hr();
  for (const auto& sg : bench::standard_sweep()) {
    const graph::Graph& g = sg.g;
    const auto E = g.edge_count();
    if (4 * E + 4 > 255) continue;  // 8-bit TTL limit, see EXPERIMENTS.md
    core::BlackholeTtlService svc(g);
    double probes = 0, outband = 0;
    int localized = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      const auto victim = static_cast<graph::EdgeId>(rng.uniform(0, E - 1));
      sim::Network net(g);
      svc.install(net);
      net.set_blackhole_from(victim, g.edge(victim).a.node, true);
      auto res = svc.run(net, 0, static_cast<std::uint32_t>(4 * E + 4));
      probes += res.probes;
      outband += static_cast<double>(res.stats.outband_total());
      if (res.blackhole_found && g.edge_at(res.at_switch, res.out_port) == victim)
        ++localized;
    }
    char buf[32], buf2[32];
    std::snprintf(buf, sizeof buf, "%.1f", probes / trials);
    std::snprintf(buf2, sizeof buf2, "%.1f", outband / trials);
    bench::row({sg.family, util::cat(g.node_count()), util::cat(E), buf,
                util::cat(static_cast<int>(2 * std::log2(4.0 * E + 4))), buf2,
                util::cat(localized, "/", trials)},
               {12, 5, 6, 10, 9, 11, 9});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "blackhole")
                     .add("series", "bh1_ttl_search")
                     .add("family", sg.family)
                     .add("n", g.node_count())
                     .add("edges", E)
                     .add("avg_probes", probes / trials)
                     .add("bound_2log4e", 2 * std::log2(4.0 * E + 4))
                     .add("avg_outband", outband / trials)
                     .add("localized", localized)
                     .add("trials", trials));
  }
  bench::hr();

  std::printf("\nBH-2: smart counters (10 planted blackholes per row)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "outband", "(3)", "inband", "4E",
              "localized"},
             {12, 5, 6, 8, 4, 8, 7, 9});
  bench::hr();
  for (const auto& sg : bench::standard_sweep()) {
    const graph::Graph& g = sg.g;
    const auto E = g.edge_count();
    core::BlackholeCountersService svc(g);
    std::uint64_t outband = 0, inband = 0;
    int localized = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      const auto victim = static_cast<graph::EdgeId>(rng.uniform(0, E - 1));
      const bool dir = rng.chance(0.5);
      sim::Network net(g);
      svc.install(net);
      const auto& ed = g.edge(victim);
      net.set_blackhole_from(victim, dir ? ed.a.node : ed.b.node, true);
      auto res = svc.run(net, 0);
      outband += res.stats.outband_total();
      inband += res.stats.inband_msgs;
      if (res.reports.size() == 1 &&
          g.edge_at(res.reports[0].at_switch, res.reports[0].out_port) == victim)
        ++localized;
    }
    bench::row({sg.family, util::cat(g.node_count()), util::cat(E),
                util::cat(outband / trials), "3", util::cat(inband / trials),
                util::cat(4 * E), util::cat(localized, "/", trials)},
               {12, 5, 6, 8, 4, 8, 7, 9});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "blackhole")
                     .add("series", "bh2_smart_counters")
                     .add("family", sg.family)
                     .add("n", g.node_count())
                     .add("edges", E)
                     .add("avg_outband", outband / trials)
                     .add("avg_inband", inband / trials)
                     .add("localized", localized)
                     .add("trials", trials));
  }
  bench::hr();
  std::printf(
      "BH-2 uses a constant 3 out-of-band messages regardless of size —\n"
      "the paper's headline — while BH-1 grows with log|E| and BH-2's\n"
      "in-band cost stays linear (dance overhead lands between 4E and ~6E).\n");
  return 0;
}
