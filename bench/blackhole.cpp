// Experiments BH-1 and BH-2 (§3.3): the two blackhole-detection solutions.
//
//  BH-1  TTL binary search: probes used vs the paper's 2 log|E| bound,
//        plus localization accuracy.
//  BH-2  smart counters: exactly 2 injected packets + 1 report ("two
//        out-band packets"), localization accuracy, and in-band cost ~4|E|.
//
// Parallelized with the pre-drawn-stream recipe: all victim/direction draws
// come out of the single bench_seed(3) stream SERIALLY, in the same order the
// old serial loops consumed them, then the per-point work fans out over
// parallel_sweep.  Output is byte-identical at any SS_BENCH_THREADS.

#include <cmath>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

namespace {

constexpr int kTrials = 10;

struct Bh1Row {
  bool ran = false;  // points over the 8-bit TTL limit are skipped
  double probes = 0;
  double outband = 0;
  int localized = 0;
  obs::Histogram probe_hist;  // per-trial probe counts, merged across points
};

struct Bh2Row {
  std::uint64_t outband = 0;
  std::uint64_t inband = 0;
  int localized = 0;
};

}  // namespace

int main() {
  bench::Metrics metrics("blackhole");
  util::Rng rng(bench::bench_seed(3));
  const auto sweep = bench::standard_sweep();

  // Pre-draw every random value in the exact order the serial version
  // consumed them: first all BH-1 victims (eligible points only), then all
  // BH-2 (victim, direction) pairs.
  std::vector<std::vector<graph::EdgeId>> bh1_victims(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto E = sweep[i].g.edge_count();
    if (4 * E + 4 > 255) continue;  // 8-bit TTL limit, see EXPERIMENTS.md
    bh1_victims[i].reserve(kTrials);
    for (int t = 0; t < kTrials; ++t)
      bh1_victims[i].push_back(static_cast<graph::EdgeId>(rng.uniform(0, E - 1)));
  }
  std::vector<std::vector<std::pair<graph::EdgeId, bool>>> bh2_draws(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto E = sweep[i].g.edge_count();
    bh2_draws[i].reserve(kTrials);
    for (int t = 0; t < kTrials; ++t) {
      const auto victim = static_cast<graph::EdgeId>(rng.uniform(0, E - 1));
      bh2_draws[i].push_back({victim, rng.chance(0.5)});
    }
  }

  const auto bh1 = bench::parallel_sweep(sweep, [&](const bench::SweepGraph& sg,
                                                    std::size_t i) {
    Bh1Row row;
    const graph::Graph& g = sg.g;
    const auto E = g.edge_count();
    if (bh1_victims[i].empty()) return row;
    row.ran = true;
    core::BlackholeTtlService svc(g);
    for (const graph::EdgeId victim : bh1_victims[i]) {
      sim::Network net(g);
      svc.install(net);
      net.set_blackhole_from(victim, g.edge(victim).a.node, true);
      auto res = svc.run(net, 0, static_cast<std::uint32_t>(4 * E + 4));
      row.probes += res.probes;
      row.probe_hist.record(res.probes);
      row.outband += static_cast<double>(res.stats.outband_total());
      if (res.blackhole_found && g.edge_at(res.at_switch, res.out_port) == victim)
        ++row.localized;
    }
    return row;
  });

  std::printf("BH-1: TTL binary search (averaged over 10 planted blackholes)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "avg probes", "2log(4E)", "avg outband",
              "localized"},
             {12, 5, 6, 10, 9, 11, 9});
  bench::hr();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (!bh1[i].ran) continue;
    const bench::SweepGraph& sg = sweep[i];
    const auto E = sg.g.edge_count();
    char buf[32], buf2[32];
    std::snprintf(buf, sizeof buf, "%.1f", bh1[i].probes / kTrials);
    std::snprintf(buf2, sizeof buf2, "%.1f", bh1[i].outband / kTrials);
    bench::row({sg.family, util::cat(sg.g.node_count()), util::cat(E), buf,
                util::cat(static_cast<int>(2 * std::log2(4.0 * E + 4))), buf2,
                util::cat(bh1[i].localized, "/", kTrials)},
               {12, 5, 6, 10, 9, 11, 9});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "blackhole")
                     .add("series", "bh1_ttl_search")
                     .add("family", sg.family)
                     .add("n", sg.g.node_count())
                     .add("edges", E)
                     .add("avg_probes", bh1[i].probes / kTrials)
                     .add("bound_2log4e", 2 * std::log2(4.0 * E + 4))
                     .add("avg_outband", bh1[i].outband / kTrials)
                     .add("localized", bh1[i].localized)
                     .add("trials", kTrials));
  }
  const obs::Histogram probe_hist = bench::merge_hist_shards(
      bh1, [](const Bh1Row& r) -> const obs::Histogram& { return r.probe_hist; });
  metrics.emit_line(probe_hist.to_json("bh1_probes"));
  bench::hr();

  const auto bh2 = bench::parallel_sweep(sweep, [&](const bench::SweepGraph& sg,
                                                    std::size_t i) {
    Bh2Row row;
    const graph::Graph& g = sg.g;
    core::BlackholeCountersService svc(g);
    for (const auto& [victim, dir] : bh2_draws[i]) {
      sim::Network net(g);
      svc.install(net);
      const auto& ed = g.edge(victim);
      net.set_blackhole_from(victim, dir ? ed.a.node : ed.b.node, true);
      auto res = svc.run(net, 0);
      row.outband += res.stats.outband_total();
      row.inband += res.stats.inband_msgs;
      if (res.reports.size() == 1 &&
          g.edge_at(res.reports[0].at_switch, res.reports[0].out_port) == victim)
        ++row.localized;
    }
    return row;
  });

  std::printf("\nBH-2: smart counters (10 planted blackholes per row)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "outband", "(3)", "inband", "4E",
              "localized"},
             {12, 5, 6, 8, 4, 8, 7, 9});
  bench::hr();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const bench::SweepGraph& sg = sweep[i];
    const auto E = sg.g.edge_count();
    bench::row({sg.family, util::cat(sg.g.node_count()), util::cat(E),
                util::cat(bh2[i].outband / kTrials), "3",
                util::cat(bh2[i].inband / kTrials), util::cat(4 * E),
                util::cat(bh2[i].localized, "/", kTrials)},
               {12, 5, 6, 8, 4, 8, 7, 9});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "blackhole")
                     .add("series", "bh2_smart_counters")
                     .add("family", sg.family)
                     .add("n", sg.g.node_count())
                     .add("edges", E)
                     .add("avg_outband", bh2[i].outband / kTrials)
                     .add("avg_inband", bh2[i].inband / kTrials)
                     .add("localized", bh2[i].localized)
                     .add("trials", kTrials));
  }
  bench::hr();
  std::printf(
      "BH-2 uses a constant 3 out-of-band messages regardless of size —\n"
      "the paper's headline — while BH-1 grows with log|E| and BH-2's\n"
      "in-band cost stays linear (dance overhead lands between 4E and ~6E).\n");
  return 0;
}
