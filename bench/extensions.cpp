// Experiment EXT: the extensions beyond the paper's four case studies —
// critical-LINK detection, iterative multi-blackhole sweeps, fully in-band
// monitoring, and topology-diff polling.  Each series shows the same
// pattern as the paper's headline results: O(1) controller involvement.

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/monitor.hpp"
#include "core/services.hpp"
#include "graph/algorithms.hpp"
#include "util/strings.hpp"

using namespace ss;

namespace {

// Part (a) per-point result: the full edge sweep is the dominant cost of
// this binary, so it fans out over parallel_sweep (no randomness involved).
struct CritLinkRow {
  bool ran = false;  // n > 40 points are skipped to keep the table readable
  std::size_t bridges = 0;
  std::size_t correct = 0;
  std::uint64_t outband = 0;
};

}  // namespace

int main() {
  bench::Metrics metrics("extensions");
  util::Rng rng(bench::bench_seed(4));
  const auto sweep = bench::standard_sweep();

  std::printf("(a) Critical-link (bridge) detection vs ground truth\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "bridges", "correct", "outband/query"},
             {12, 4, 5, 8, 8, 13});
  bench::hr();
  const auto crit_rows = bench::parallel_sweep(
      sweep, [](const bench::SweepGraph& sg, std::size_t) {
        CritLinkRow row;
        if (sg.n > 40) return row;
        row.ran = true;
        const graph::Graph& g = sg.g;
        core::CriticalLinkService svc(g);
        const auto truth = graph::bridges(g);
        for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
          if (truth[e]) ++row.bridges;
          sim::Network net(g);
          svc.install(net);
          auto res = svc.run(net, g.edge(e).a.node, g.edge(e).a.port);
          if (res.critical.has_value() && *res.critical == truth[e])
            ++row.correct;
          row.outband += res.stats.outband_total();
        }
        return row;
      });
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (!crit_rows[i].ran) continue;
    const bench::SweepGraph& sg = sweep[i];
    const graph::Graph& g = sg.g;
    bench::row({sg.family, util::cat(sg.n), util::cat(g.edge_count()),
                util::cat(crit_rows[i].bridges),
                util::cat(crit_rows[i].correct, "/", g.edge_count()),
                util::cat(crit_rows[i].outband / g.edge_count())},
               {12, 4, 5, 8, 8, 13});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "extensions")
                     .add("series", "critical_link")
                     .add("family", sg.family)
                     .add("n", sg.n)
                     .add("edges", g.edge_count())
                     .add("bridges", crit_rows[i].bridges)
                     .add("correct", crit_rows[i].correct)
                     .add("outband_per_query",
                          crit_rows[i].outband / g.edge_count()));
  }
  bench::hr();

  std::printf("\n(b) Iterative multi-blackhole sweep (torus 5x5)\n");
  bench::hr();
  bench::row({"planted", "found", "rounds", "outband", "inband"},
             {8, 6, 7, 8, 8});
  bench::hr();
  graph::Graph torus = graph::make_torus(5, 5);
  for (std::size_t planted : {0u, 1u, 2u, 3u, 5u}) {
    core::BlackholeCountersService svc(torus);
    sim::Network net(torus);
    svc.install(net);
    std::set<graph::EdgeId> victims;
    while (victims.size() < planted) {
      const auto e =
          static_cast<graph::EdgeId>(rng.uniform(0, torus.edge_count() - 1));
      if (victims.insert(e).second)
        net.set_blackhole_from(e, torus.edge(e).a.node, true);
    }
    auto sweep = svc.find_all(net, 0, 12);
    bench::row({util::cat(planted), util::cat(sweep.found.size()),
                util::cat(sweep.rounds), util::cat(sweep.stats.outband_total()),
                util::cat(sweep.stats.inband_msgs)},
               {8, 6, 7, 8, 8});
  }
  bench::hr();

  std::printf("\n(c) Fully in-band monitoring: switch->controller messages\n");
  bench::hr();
  bench::row({"service", "controller mode", "in-band mode"}, {14, 15, 13});
  bench::hr();
  {
    graph::Graph g = graph::make_grid(4, 5);
    {
      core::SnapshotService a(g), b(g, 0, true, /*collector=*/0);
      sim::Network na(g), nb(g);
      a.install(na);
      b.install(nb);
      const auto ra = a.run(na, 7).stats.outband_to_ctrl;
      const auto rb = b.run(nb, 7).stats.outband_to_ctrl;
      bench::row({"snapshot", util::cat(ra), util::cat(rb)}, {14, 15, 13});
    }
    {
      core::CriticalNodeService a(g), b(g, /*collector=*/0);
      sim::Network na(g), nb(g);
      a.install(na);
      b.install(nb);
      const auto ra = a.run(na, 7).stats.outband_to_ctrl;
      const auto rb = b.run(nb, 7).stats.outband_to_ctrl;
      bench::row({"critical", util::cat(ra), util::cat(rb)}, {14, 15, 13});
    }
    {
      core::BlackholeCountersService a(g), b(g, 16, /*collector=*/0);
      sim::Network na(g), nb(g);
      a.install(na);
      b.install(nb);
      na.set_blackhole_from(3, g.edge(3).a.node, true);
      nb.set_blackhole_from(3, g.edge(3).a.node, true);
      const auto ra = a.run(na, 0).stats.outband_to_ctrl;
      const auto rb = b.run(nb, 0).stats.outband_to_ctrl;
      bench::row({"blackhole-ctr", util::cat(ra), util::cat(rb)}, {14, 15, 13});
    }
  }
  bench::hr();

  std::printf("\n(d) Topology-diff polling (torus 5x5, rolling failures)\n");
  bench::hr();
  bench::row({"poll", "event", "verdict", "missing", "inband", "outband"},
             {5, 22, 9, 8, 7, 8});
  bench::hr();
  {
    graph::Graph g = graph::make_torus(5, 5);
    core::TopologyMonitor mon(g);
    sim::Network net(g);
    mon.install(net);
    int poll = 0;
    auto do_poll = [&](const char* event) {
      auto diff = mon.poll(net, 0);
      bench::row({util::cat(++poll), event,
                  diff.healthy ? "healthy" : "ALARM",
                  util::cat(diff.missing_links.size()),
                  util::cat(diff.stats.inband_msgs),
                  util::cat(diff.stats.outband_total())},
                 {5, 22, 9, 8, 7, 8});
    };
    do_poll("baseline");
    net.set_link_up(9, false);
    do_poll("link 9 fails");
    net.set_link_up(30, false);
    do_poll("link 30 fails");
    net.set_link_up(9, true);
    do_poll("link 9 repaired");
    net.set_link_up(30, true);
    do_poll("all repaired");
  }
  bench::hr();
  std::printf(
      "Every extension keeps the paper's O(1)-controller-involvement shape;\n"
      "in-band mode eliminates even that (reports ride the data plane).\n");
  return 0;
}
