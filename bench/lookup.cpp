// Lookup microbenchmark: linear vs indexed flow-table dispatch on compiled
// SmartSouth pipelines, plus whole-traversal wall-clock for both modes.
//
// Workload: install the hardened snapshot service (fragment_limit 12, dedup,
// epoch guard — the largest tables the compiler emits for a service run) on
// ring/grid/torus topologies, run one traced traversal, and replay the real
// (switch, in_port, packet) arrival sequence against the tables with
// counter-free find_linear / find_indexed walks.  Per-hop cost is the table
// walk a real arrival performs (pre -> start -> aux -> classify).
//
// Output: stdout table; BENCH_pipeline.json (see docs/performance.md);
// lookup.metrics.jsonl sidecar.  Modes:
//   bench_lookup [--n N] [--iters K] [--out PATH] [--check BASELINE]
// --check compares the DETERMINISTIC fields (hops, events, entries) of each
// (topo, n) row against a committed baseline and exits 1 on drift — the CI
// bench-smoke job runs this against the repo's BENCH_pipeline.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "sim/network.hpp"

using namespace ss;

namespace {

struct Workload {
  ofp::SwitchId sw = 0;
  ofp::PortNo in_port = 0;
  ofp::Packet packet;
};

struct Row {
  std::string topo;
  std::size_t n = 0;
  // Deterministic (checked against the committed baseline):
  std::uint64_t hops = 0;     // Stats::sent of one traversal
  std::uint64_t events = 0;   // Stats::events of one traversal
  std::uint64_t entries = 0;  // flow entries per switch
  // Informational (not drift-checked): packet tag region vs BitVec SBO.
  std::uint64_t tag_bits = 0;  // reserved tag width at this n
  bool tag_inline = false;     // fits util::BitVec::kInlineBits (no heap)
  // Timing (informational):
  double linear_ns = 0.0;   // per-hop table walk, linear scan
  double indexed_ns = 0.0;  // per-hop table walk, indexed dispatch
  double trav_linear_us = 0.0;
  double trav_indexed_us = 0.0;
  double trav_traced_us = 0.0;  // indexed + trace ring (arena-pooled entries)
  // Per-worker self-profiling shard (folded after the sweep with merge()).
  util::prof::StageProfile prof;
  double speedup() const {
    return indexed_ns > 0.0 ? linear_ns / indexed_ns : 0.0;
  }
  double trace_overhead() const {
    return trav_indexed_us > 0.0 ? trav_traced_us / trav_indexed_us : 0.0;
  }
};

graph::Graph build_topo(const std::string& topo, std::size_t n) {
  if (topo == "ring") return graph::make_ring(n);
  // Square-ish rows x cols with rows * cols == n.
  std::size_t rows = static_cast<std::size_t>(std::sqrt(double(n)));
  while (rows > 1 && n % rows != 0) --rows;
  const std::size_t cols = n / rows;
  return topo == "grid" ? graph::make_grid(rows, cols)
                        : graph::make_torus(rows, cols);
}

core::SnapshotService make_service(const graph::Graph& g) {
  // Fragment budget scales with network size, as a deployment would size it
  // (finer-grained snapshots on bigger networks); it is also what drives the
  // classify-table entry count, so the bench exercises realistic tables at
  // every n rather than the Δ-only minimum.
  const auto frag = static_cast<std::uint32_t>(
      std::max<std::size_t>(12, g.node_count() / 8));
  return core::SnapshotService(g, frag, /*dedup=*/true,
                               /*inband_collector=*/{}, /*epoch_guard=*/true);
}

void set_index_mode(sim::Network& net, bool indexed) {
  for (graph::NodeId v = 0; v < net.topology().node_count(); ++v)
    for (ofp::FlowTable& t : net.sw(v).tables_mut()) t.set_use_index(indexed);
}

/// The table walk an arrival performs, lookup cost only (no actions; the
/// snapshot miss path is action-free before classify, so post-goto tables
/// see the arrival packet exactly as the pipeline does for non-root hops).
std::uint64_t walk(const std::vector<ofp::FlowTable>& tables,
                   const ofp::Packet& pkt, ofp::PortNo in_port, bool indexed) {
  std::size_t t = 0;
  std::uint64_t acc = 0;
  while (t < tables.size()) {
    const ofp::FlowEntry* e = indexed ? tables[t].find_indexed(pkt, in_port)
                                      : tables[t].find_linear(pkt, in_port);
    if (e == nullptr) break;
    acc += e->cookie;
    if (!e->goto_table) break;
    t = *e->goto_table;
  }
  return acc;
}

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Row measure_point(const std::string& topo, std::size_t n, int iters) {
  Row r;
  r.topo = topo;
  r.n = n;
  const graph::Graph g = build_topo(topo, n);
  const core::SnapshotService svc = make_service(g);

  // Traced reference run: collect the real arrival workload.
  std::vector<Workload> work;
  {
    sim::Network net(g, 1, bench::bench_seed(1));
    svc.install(net);
    net.set_trace(true);
    svc.run(net, 0);
    r.hops = net.stats().sent;
    r.events = net.stats().events;
    r.entries = net.sw(0).total_flow_entries();
    // Cap the replay set so it stays cache-resident: the microbench isolates
    // dispatch arithmetic; DRAM streaming effects are what the traversal
    // wall-clock columns already capture.
    constexpr std::size_t kMaxHops = 512;
    for (const sim::TraceEntry& te : net.trace()) {
      if (!te.delivered) continue;
      work.push_back({te.to, te.in_port, te.packet});
      if (work.size() >= kMaxHops) break;
    }
    if (!work.empty()) {
      r.tag_bits = work.front().packet.tag.size_bits();
      r.tag_inline = work.front().packet.tag.inline_storage();
    }

    // Time both walk modes against the live tables (counters untouched:
    // find_* never bump lookup/hit counters).  Warm once so the lazy index
    // build is not billed to the first timed pass.
    std::uint64_t sink = 0;
    for (const Workload& w : work)
      sink += walk(net.sw(w.sw).tables(), w.packet, w.in_port, true);
    for (const int indexed : {0, 1}) {
      const double t0 = now_ns();
      for (int it = 0; it < iters; ++it)
        for (const Workload& w : work)
          sink += walk(net.sw(w.sw).tables(), w.packet, w.in_port, indexed != 0);
      const double per_hop =
          (now_ns() - t0) / (double(iters) * double(work.size()));
      (indexed != 0 ? r.indexed_ns : r.linear_ns) = per_hop;
    }
    if (sink == 0xdeadbeef) std::fprintf(stderr, "(impossible)\n");
  }

  // Whole-traversal wall-clock, both modes, fresh network each (stats must
  // agree between modes — a cheap end-to-end equivalence check).
  std::uint64_t ev_linear = 0, ev_indexed = 0;
  for (const int indexed : {0, 1}) {
    sim::Network net(g, 1, bench::bench_seed(1));
    svc.install(net);
    set_index_mode(net, indexed != 0);
    const double t0 = now_ns();
    svc.run(net, 0);
    const double us = (now_ns() - t0) / 1000.0;
    (indexed != 0 ? r.trav_indexed_us : r.trav_linear_us) = us;
    (indexed != 0 ? ev_indexed : ev_linear) = net.stats().events;
    if (net.stats().sent != r.hops || net.stats().events != r.events) {
      std::fprintf(stderr,
                   "FATAL: %s n=%zu mode=%d stats diverged from reference "
                   "(sent %llu vs %llu, events %llu vs %llu)\n",
                   topo.c_str(), n, indexed,
                   (unsigned long long)net.stats().sent,
                   (unsigned long long)r.hops,
                   (unsigned long long)net.stats().events,
                   (unsigned long long)r.events);
      std::exit(1);
    }
  }
  (void)ev_linear;
  (void)ev_indexed;

  // Traced traversal (indexed mode) with a bounded ring: eviction feeds the
  // TraceEntry arena pool, so this pins what profiling-with-traces-on costs
  // once per-hop snapshots stop allocating.
  {
    sim::Network net(g, 1, bench::bench_seed(1));
    svc.install(net);
    set_index_mode(net, true);
    net.set_trace_capacity(256);
    const double t0 = now_ns();
    svc.run(net, 0);
    r.trav_traced_us = (now_ns() - t0) / 1000.0;
    if (net.stats().sent != r.hops || net.stats().events != r.events) {
      std::fprintf(stderr,
                   "FATAL: %s n=%zu traced run stats diverged from reference\n",
                   topo.c_str(), n);
      std::exit(1);
    }
  }

  // Self-profiling pass: a separate armed traversal so the timed runs above
  // stay unperturbed (an armed site pays two clock reads per op).  Ops
  // counts are deterministic; only the nanoseconds are wall-clock, and they
  // land solely in the metrics sidecar.
  {
    sim::Network net(g, 1, bench::bench_seed(1));
    svc.install(net);
    set_index_mode(net, true);
    util::prof::StageProfile* prev = util::prof::set_thread_profile(&r.prof);
    svc.run(net, 0);
    util::prof::set_thread_profile(prev);
  }
  return r;
}

int check_baseline(const std::vector<Row>& rows, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "--check: cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json_parse(ss.str());
  if (!doc || !doc->is_object() || doc->get("rows") == nullptr ||
      !doc->get("rows")->is_array()) {
    std::fprintf(stderr, "--check: %s is not a BENCH_pipeline.json document\n",
                 path.c_str());
    return 1;
  }
  int compared = 0, failed = 0;
  for (const Row& r : rows) {
    for (const obs::JsonValue& b : doc->get("rows")->array) {
      if (b.str("topo") != r.topo || b.u64("n") != r.n) continue;
      ++compared;
      const bool ok = b.u64("hops") == r.hops && b.u64("events") == r.events &&
                      b.u64("entries") == r.entries;
      if (!ok) {
        ++failed;
        std::fprintf(stderr,
                     "DRIFT %s n=%zu: hops %llu->%llu events %llu->%llu "
                     "entries %llu->%llu\n",
                     r.topo.c_str(), r.n, (unsigned long long)b.u64("hops"),
                     (unsigned long long)r.hops,
                     (unsigned long long)b.u64("events"),
                     (unsigned long long)r.events,
                     (unsigned long long)b.u64("entries"),
                     (unsigned long long)r.entries);
      }
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "--check: no baseline rows matched this run\n");
    return 1;
  }
  std::fprintf(stderr, "--check: %d row(s) compared against %s, %d drifted\n",
               compared, path.c_str(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {60, 400};
  int iters = 200;
  std::string out_path = "BENCH_pipeline.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--n")
      sizes = {static_cast<std::size_t>(std::strtoul(next(), nullptr, 10))};
    else if (a == "--iters")
      iters = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (a == "--out")
      out_path = next();
    else if (a == "--check")
      check_path = next();
    else {
      std::fprintf(stderr,
                   "usage: bench_lookup [--n N] [--iters K] [--out PATH] "
                   "[--check BASELINE]\n");
      return 2;
    }
  }
  if (iters < 1) iters = 1;

  bench::Metrics metrics("lookup");
  const std::vector<int> widths = {6, 6, 8, 9, 9, 9, 8, 10, 10, 8,
                                   11, 11, 11, 9};
  bench::row({"topo", "n", "entries", "hops", "events", "tag_bits", "tag_sbo",
              "linear_ns", "index_ns", "speedup", "trav_lin_us", "trav_idx_us",
              "trav_trc_us", "trace_ov"},
             widths);
  bench::hr(148);

  struct Point {
    std::string topo;
    std::size_t n;
  };
  std::vector<Point> points;
  for (const char* topo : {"ring", "grid", "torus"})
    for (const std::size_t n : sizes) points.push_back({topo, n});

  // Timing benches stay serial by default (parallel workers would contend
  // for cores and pollute each other's timings); SS_BENCH_THREADS>1 opts in.
  const std::vector<Row> rows = bench::parallel_sweep(
      points,
      [&](const Point& p, std::size_t) { return measure_point(p.topo, p.n, iters); },
      std::getenv("SS_BENCH_THREADS") != nullptr ? 0u : 1u);

  obs::JsonArr arr;
  for (const Row& r : rows) {
    char lb[32], ib[32], sb[32], tl[32], ti[32], tt[32], to[32];
    std::snprintf(lb, sizeof lb, "%.1f", r.linear_ns);
    std::snprintf(ib, sizeof ib, "%.1f", r.indexed_ns);
    std::snprintf(sb, sizeof sb, "%.2fx", r.speedup());
    std::snprintf(tl, sizeof tl, "%.0f", r.trav_linear_us);
    std::snprintf(ti, sizeof ti, "%.0f", r.trav_indexed_us);
    std::snprintf(tt, sizeof tt, "%.0f", r.trav_traced_us);
    std::snprintf(to, sizeof to, "%.2fx", r.trace_overhead());
    bench::row({r.topo, std::to_string(r.n), std::to_string(r.entries),
                std::to_string(r.hops), std::to_string(r.events),
                std::to_string(r.tag_bits), r.tag_inline ? "inline" : "heap",
                lb, ib, sb, tl, ti, tt, to},
               widths);

    obs::JsonObj o;
    o.add("topo", r.topo);
    o.add("n", r.n);
    o.add("entries", r.entries);
    o.add("hops", r.hops);
    o.add("events", r.events);
    o.add("tag_bits", r.tag_bits);
    o.add("tag_inline", r.tag_inline);
    o.add("linear_ns", r.linear_ns);
    o.add("indexed_ns", r.indexed_ns);
    o.add("speedup", r.speedup());
    o.add("traversal_linear_us", r.trav_linear_us);
    o.add("traversal_indexed_us", r.trav_indexed_us);
    o.add("traversal_traced_us", r.trav_traced_us);
    arr.push(o);

    obs::JsonObj m;
    m.add("type", "lookup");
    m.add("topo", r.topo);
    m.add("n", r.n);
    m.add("entries", r.entries);
    m.add("hops", r.hops);
    m.add("events", r.events);
    m.add("linear_ns", r.linear_ns);
    m.add("indexed_ns", r.indexed_ns);
    metrics.emit(m);
  }

  // Fold the per-point profiling shards and append them to the sidecar.
  util::prof::StageProfile prof;
  for (const Row& r : rows) prof.merge(r.prof);
  bench::emit_stage_profile(metrics, prof);
  bench::print_stage_profile(prof);

  if (!check_path.empty()) {
    const int rc = check_baseline(rows, check_path);
    if (rc != 0) return rc;
  }

  if (!out_path.empty()) {
    obs::JsonObj doc;
    doc.add("schema", "ss.bench.pipeline.v1");
    doc.add("bench", "lookup");
    doc.add_u("seed", bench::bench_seed());
    doc.add_raw("rows", arr.str());
    std::ofstream out(out_path, std::ios::trunc);
    out << doc.str() << "\n";
    std::fprintf(stderr, "baseline: %s\n", out_path.c_str());
  }
  if (metrics.ok())
    std::fprintf(stderr, "metrics: %s\n", metrics.path().c_str());
  return 0;
}
