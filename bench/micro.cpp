// Experiment MICRO: engineering micro-benchmarks (google-benchmark) for the
// substrate itself — pipeline lookup cost, smart-counter execution, rule
// compilation, and end-to-end traversals per second.

#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "core/services.hpp"
#include "graph/generators.hpp"
#include "ofp/switch.hpp"
#include "util/rng.hpp"

namespace {

using namespace ss;

void BM_BitVecFieldAccess(benchmark::State& state) {
  util::BitVec v(512);
  std::uint64_t x = 0;
  for (auto _ : state) {
    v.set(130, 11, x & 0x7ff);
    benchmark::DoNotOptimize(v.get(130, 11));
    ++x;
  }
}
BENCHMARK(BM_BitVecFieldAccess);

void BM_FlowTableLookup(benchmark::State& state) {
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  ofp::Switch sw(1, 8);
  for (std::uint32_t k = 0; k < entries; ++k) {
    ofp::FlowEntry e;
    e.priority = k;
    e.match.on_tag(0, 16, k);
    e.actions = {ofp::ActOutput{1}};
    sw.table(0).add(std::move(e));
  }
  ofp::Packet pkt;
  pkt.tag.ensure(64);
  pkt.tag.set(0, 16, entries / 2);
  for (auto _ : state) {
    auto res = sw.receive(pkt, 2);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(128)->Arg(1024);

void BM_SmartCounterFetchInc(benchmark::State& state) {
  ofp::Switch sw(1, 2);
  ofp::Group g;
  g.id = 1;
  g.type = ofp::GroupType::kSelect;
  for (int j = 0; j < 16; ++j)
    g.buckets.push_back(
        {{ofp::ActSetTag{0, 4, static_cast<std::uint64_t>(j)}}, std::nullopt});
  sw.groups().add(std::move(g));
  ofp::FlowEntry e;
  e.priority = 1;
  e.actions = {ofp::ActGroup{1}};
  sw.table(0).add(std::move(e));
  ofp::Packet pkt;
  pkt.tag.ensure(64);
  for (auto _ : state) {
    auto res = sw.receive(pkt, 1);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_SmartCounterFetchInc);

void BM_CompileSnapshotSwitch(benchmark::State& state) {
  const auto deg = static_cast<std::size_t>(state.range(0));
  util::Rng rng(bench::bench_seed(6));
  graph::Graph g = graph::make_random_regular(std::max<std::size_t>(deg * 4, 8),
                                              deg, rng);
  core::TagLayout layout(g);
  core::CompilerOptions opts;
  opts.kind = core::ServiceKind::kSnapshot;
  core::TemplateCompiler compiler(g, layout, opts);
  for (auto _ : state) {
    ofp::Switch sw(0, g.degree(0));
    compiler.install_switch(sw, 0);
    benchmark::DoNotOptimize(sw.total_flow_entries());
  }
}
BENCHMARK(BM_CompileSnapshotSwitch)->Arg(4)->Arg(8)->Arg(16);

void BM_FullTraversal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(bench::bench_seed(7));
  graph::Graph g = graph::make_random_regular(n, 4, rng);
  core::PlainTraversal svc(g, /*finish_report=*/false);
  for (auto _ : state) {
    sim::Network net(g);
    svc.install(net);
    svc.run(net, 0);
    benchmark::DoNotOptimize(net.stats().sent);
  }
  state.SetItemsProcessed(state.iterations() *
                          (4 * g.edge_count() - 2 * g.node_count() + 2));
}
BENCHMARK(BM_FullTraversal)->Arg(20)->Arg(50)->Arg(100);

void BM_SnapshotEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(bench::bench_seed(8));
  graph::Graph g = graph::make_random_regular(n, 4, rng);
  core::SnapshotService svc(g);
  for (auto _ : state) {
    sim::Network net(g);
    svc.install(net);
    auto res = svc.run(net, 0);
    benchmark::DoNotOptimize(res.edges.size());
  }
}
BENCHMARK(BM_SnapshotEndToEnd)->Arg(20)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
