// Experiment BH-loss (§3.3, "Detecting Packet-Loss with Smart Counters"):
//  (a) detection rate vs loss rate for a monitored link;
//  (b) the overflow false-negative the paper warns about, and the fix of
//      comparing several counters "with unique and prime sizes".

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

namespace {

// One monitored link inside a small fabric; returns detection outcome.
bool run_trial(const std::vector<std::uint32_t>& moduli, double loss_rate,
               std::uint32_t traffic, std::uint64_t seed) {
  graph::Graph g = graph::make_path(3);
  core::PacketLossMonitor mon(g, moduli);
  sim::Network net(g, 1, seed);
  mon.install(net);
  const graph::EdgeId link = g.edge_at(1, 2);
  net.set_loss_from(link, 1, loss_rate);
  mon.send_data(net, 1, 2, traffic);
  net.set_loss_from(link, 1, 0.0);  // heal before the detection traversal
  auto res = mon.detect(net, 0);
  return !res.reports.empty();
}

const std::vector<std::vector<std::uint32_t>> kModuliSets{{8}, {7, 11},
                                                          {7, 11, 13}};

}  // namespace

int main() {
  bench::Metrics metrics("packet_loss");
  std::printf("(a) Detection rate vs loss rate (20 data packets, 50 trials)\n");
  bench::hr();
  bench::row({"loss rate", "mod {8}", "mod {7,11}", "mod {7,11,13}"},
             {10, 9, 11, 13});
  bench::hr();
  // Every trial derives its seed from (1000 + t) alone — no shared stream —
  // so rates fan out over parallel_sweep with no pre-draw step needed.
  const std::vector<double> rates{0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8};
  const int trials = 50;
  const auto hits_per_rate =
      bench::parallel_sweep(rates, [&](double rate, std::size_t) {
        std::vector<int> hits;
        for (const auto& moduli : kModuliSets) {
          int h = 0;
          for (int t = 0; t < trials; ++t)
            if (run_trial(moduli, rate, 20, 1000 + t)) ++h;
          hits.push_back(h);
        }
        return hits;
      });
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::vector<std::string> cols{util::cat(rates[i])};
    obs::JsonObj rec;
    rec.add("type", "bench")
        .add("bench", "packet_loss")
        .add("series", "detection_vs_loss")
        .add("loss_rate", rates[i])
        .add("trials", trials);
    for (std::size_t m = 0; m < kModuliSets.size(); ++m) {
      cols.push_back(util::cat(hits_per_rate[i][m] * 2, "%"));
      std::string key = "hits_mod";
      for (auto mod : kModuliSets[m]) key += util::cat("_", mod);
      rec.add(key, hits_per_rate[i][m]);
    }
    bench::row(cols, {10, 9, 11, 13});
    metrics.emit(rec);
  }
  bench::hr();

  std::printf(
      "\n(b) Overflow false negatives: exactly L lost packets vs modulus\n");
  bench::hr();
  bench::row({"lost L", "mod {8}", "mod {13}", "mod {7,11}", "mod {13,15,16}"},
             {7, 8, 9, 10, 14});
  bench::hr();
  for (std::uint32_t lost : {1u, 7u, 8u, 13u, 16u, 77u, 104u}) {
    std::vector<std::string> cols{util::cat(lost)};
    for (auto moduli : std::vector<std::vector<std::uint32_t>>{
             {8}, {13}, {7, 11}, {13, 15, 16}}) {
      // Deterministic: drop exactly `lost` packets.
      graph::Graph g = graph::make_path(2);
      core::PacketLossMonitor mon(g, moduli);
      sim::Network net(g);
      mon.install(net);
      net.set_loss_from(0, 0, 1.0);
      mon.send_data(net, 0, 1, lost);
      net.set_loss_from(0, 0, 0.0);
      auto res = mon.detect(net, 0);
      cols.push_back(res.reports.empty() ? "MISSED" : "detected");
    }
    bench::row(cols, {7, 8, 9, 10, 14});
  }
  bench::hr();
  std::printf(
      "A single mod-k counter is blind to losses that are multiples of k\n"
      "(L=8 vs {8}, L=13 vs {13}, L=77 vs {7,11}); coprime multi-counter\n"
      "comparison pushes the blind spot to the product of the moduli\n"
      "(3120 for {13,15,16}) — the paper's prime-sizes remedy.\n");
  return 0;
}
