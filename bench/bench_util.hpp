#pragma once
// Shared bench plumbing: aligned table printing, the topology sweep used
// across the Table-2 experiments, and the JSONL metrics sidecar every bench
// writes next to its stdout table.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "util/profile.hpp"
#include "util/rng.hpp"

namespace ss::bench {

/// JSONL metrics sidecar: one file per bench binary, one object per line.
/// Written to $SS_METRICS_DIR (or the working directory) as
/// <name>.metrics.jsonl, so sweep tables stay machine-readable without
/// scraping stdout.
class Metrics {
 public:
  explicit Metrics(std::string_view name) {
    const char* dir = std::getenv("SS_METRICS_DIR");
    path_ = std::string(dir != nullptr ? dir : ".") + "/" + std::string(name) +
            ".metrics.jsonl";
    os_.open(path_, std::ios::trunc);
    if (!os_) std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    // Self-describing first line: consumers check schema_version via
    // obs::schema_version_of and warn (never crash) on newer files.
    obs::JsonObj meta;
    meta.add("type", "meta")
        .add_u("schema_version", obs::kMetricsSchemaVersion)
        .add("bench", name);
    emit(meta);
  }

  void emit(const obs::JsonObj& o) {
    if (os_) os_ << o.str() << '\n';
  }

  /// One pre-encoded JSONL line (histogram serializations etc.).
  void emit_line(std::string_view line) {
    if (os_) os_ << line << '\n';
  }

  /// Raw stream access for the obs/ exporters (write_flow_stats etc.).
  std::ostream& stream() { return os_; }
  bool ok() const { return os_.good(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream os_;
};

/// Emit one {"type":"profile"} sidecar line per hot-path stage that
/// recorded work (util::prof shards, folded by the caller with merge()).
/// ns fields are wall-clock and live ONLY here — never in the
/// determinism-gated BENCH_*.json documents.  The bucket arrays are the
/// obs::Histogram log-bucket scheme (prof_bucket_lo lower bounds).
inline void emit_stage_profile(Metrics& m, const util::prof::StageProfile& p) {
  for (std::size_t s = 0; s < util::prof::kStageCount; ++s) {
    const util::prof::StageCounters& c = p.stages[s];
    if (c.ops == 0) continue;
    obs::JsonObj o;
    o.add("type", "profile")
        .add_u("schema_version", obs::kMetricsSchemaVersion)
        .add("stage",
             util::prof::stage_name(static_cast<util::prof::Stage>(s)))
        .add("ops", c.ops)
        .add("ns_sum", c.ns_sum)
        .add("ns_min", c.ns_min)
        .add("ns_max", c.ns_max)
        .add("ns_mean", c.ops != 0 ? double(c.ns_sum) / double(c.ops) : 0.0);
    obs::JsonArr lo, cnt;
    for (const auto& [bucket, count] : c.ns_buckets) {
      lo.push(util::prof::prof_bucket_lo(bucket));
      cnt.push(count);
    }
    o.add_raw("bucket_lo_ns", lo.str()).add_raw("bucket_count", cnt.str());
    m.emit(o);
  }
}

/// Companion stderr one-liner per stage (handy when eyeballing a run).
inline void print_stage_profile(const util::prof::StageProfile& p) {
  for (std::size_t s = 0; s < util::prof::kStageCount; ++s) {
    const util::prof::StageCounters& c = p.stages[s];
    if (c.ops == 0) continue;
    std::fprintf(stderr, "profile: %-13s ops=%-10llu mean=%.0fns min=%llu max=%llu\n",
                 util::prof::stage_name(static_cast<util::prof::Stage>(s)),
                 static_cast<unsigned long long>(c.ops),
                 double(c.ns_sum) / double(c.ops),
                 static_cast<unsigned long long>(c.ns_min),
                 static_cast<unsigned long long>(c.ns_max));
  }
}

/// Every bench draws its randomness from ONE documented base seed so a run
/// is reproducible and cross-bench comparable: $SS_SEED overrides
/// kDefaultSeed (2014 — HotNets-XIII vintage, the seed the published
/// EXPERIMENTS.md numbers were measured with).
inline constexpr std::uint64_t kDefaultSeed = 2014;

/// The base seed: $SS_SEED if set and numeric, else kDefaultSeed.
inline std::uint64_t bench_seed() {
  const char* s = std::getenv("SS_SEED");
  if (s != nullptr && *s != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && *end == '\0') return v;
    std::fprintf(stderr, "warning: ignoring non-numeric SS_SEED '%s'\n", s);
  }
  return kDefaultSeed;
}

/// Decorrelated per-use sub-seed (splitmix64 mix of base + stream) so two
/// benches — or two Rngs inside one bench — never share a stream.  Streams
/// are assigned one per call site; keep them distinct within a binary.
inline std::uint64_t bench_seed(std::uint64_t stream) {
  std::uint64_t z = bench_seed() + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Print one row of right-aligned columns (first column left-aligned).
inline void row(const std::vector<std::string>& cols,
                const std::vector<int>& widths) {
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const int w = k < widths.size() ? widths[k] : 12;
    if (k == 0)
      std::printf("%-*s", w, cols[k].c_str());
    else
      std::printf("  %*s", w, cols[k].c_str());
  }
  std::printf("\n");
}

inline void hr(int total = 100) {
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

struct SweepGraph {
  std::string family;
  std::size_t n;
  graph::Graph g;
};

/// The standard sweep: several families at several sizes, deterministic.
inline std::vector<SweepGraph> standard_sweep() {
  util::Rng rng(bench_seed());  // raw base: default sweep matches the tables
  std::vector<SweepGraph> out;
  for (std::size_t n : {10, 20, 40, 80}) {
    out.push_back({"ring", n, graph::make_ring(n)});
    out.push_back({"tree", n, graph::make_dary_tree(n, 2)});
    out.push_back({"grid", n, graph::make_grid(n / 5, 5)});
    out.push_back({"reg4", n, graph::make_random_regular(n, 4, rng)});
    out.push_back({"gnp", n, graph::make_gnp_connected(n, 0.15, rng)});
  }
  out.push_back({"fattree", 20, graph::make_fat_tree(4)});
  out.push_back({"fattree", 45, graph::make_fat_tree(6)});
  return out;
}

}  // namespace ss::bench
