#pragma once
// Shared bench plumbing: aligned table printing and the topology sweep used
// across the Table-2 experiments.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ss::bench {

/// Print one row of right-aligned columns (first column left-aligned).
inline void row(const std::vector<std::string>& cols,
                const std::vector<int>& widths) {
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const int w = k < widths.size() ? widths[k] : 12;
    if (k == 0)
      std::printf("%-*s", w, cols[k].c_str());
    else
      std::printf("  %*s", w, cols[k].c_str());
  }
  std::printf("\n");
}

inline void hr(int total = 100) {
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

struct SweepGraph {
  std::string family;
  std::size_t n;
  graph::Graph g;
};

/// The standard sweep: several families at several sizes, deterministic.
inline std::vector<SweepGraph> standard_sweep() {
  util::Rng rng(2014);  // HotNets-XIII vintage
  std::vector<SweepGraph> out;
  for (std::size_t n : {10, 20, 40, 80}) {
    out.push_back({"ring", n, graph::make_ring(n)});
    out.push_back({"tree", n, graph::make_dary_tree(n, 2)});
    out.push_back({"grid", n, graph::make_grid(n / 5, 5)});
    out.push_back({"reg4", n, graph::make_random_regular(n, 4, rng)});
    out.push_back({"gnp", n, graph::make_gnp_connected(n, 0.15, rng)});
  }
  out.push_back({"fattree", 20, graph::make_fat_tree(4)});
  out.push_back({"fattree", 45, graph::make_fat_tree(6)});
  return out;
}

}  // namespace ss::bench
