// Churn bench: completion rate and snapshot accuracy of the hardened
// (epoch watchdog/retry) snapshot service under Poisson link churn — the
// regime the paper explicitly excludes ("no more failures will occur"
// during execution).  Each trial expands a fresh Poisson schedule, runs
// the scenario engine, and judges the returned snapshot against the
// reference component at verdict time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "scenario/runner.hpp"
#include "scenario/schedule.hpp"
#include "scenario/spec.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("churn");
  const std::vector<int> widths = {10, 9, 6, 10, 10, 10, 9};
  bench::row({"topo", "rate", "runs", "complete", "match", "attempts", "events"},
             widths);
  bench::hr(84);

  struct Topo {
    std::string name;
    graph::Graph g;
  };
  std::vector<Topo> topos;
  topos.push_back({"ring24", graph::make_ring(24)});
  topos.push_back({"torus24", graph::make_torus(6, 4)});

  const double rates[] = {0.0, 5e-4, 1e-3, 2e-3, 4e-3};
  constexpr int kTrials = 20;
  constexpr sim::Time kWindowEnd = 600;
  constexpr sim::Time kDownFor = 150;

  // Every (topo, rate, trial) point is independent: the trial seed is a
  // pure function of the trial number (bench_seed(100 + trial)), never a
  // shared Rng draw, so the flattened sweep parallelizes without changing a
  // single result.  Aggregation and printing stay serial, in point order.
  struct Point {
    std::size_t topo = 0;
    double rate = 0.0;
    int trial = 0;
  };
  struct Outcome {
    bool complete = false;
    bool match = false;
    std::uint64_t attempts = 0;
    std::uint64_t events = 0;
  };
  std::vector<Point> points;
  for (std::size_t ti = 0; ti < topos.size(); ++ti)
    for (const double rate : rates)
      for (int trial = 0; trial < kTrials; ++trial)
        points.push_back({ti, rate, trial});

  const auto outcomes = bench::parallel_sweep(
      points, [&](const Point& pt, std::size_t) {
        const Topo& t = topos[pt.topo];
        scenario::ScenarioSpec spec;
        spec.name = "churn";
        spec.topology.kind = t.name;
        spec.topology.n = t.g.node_count();
        spec.graph = t.g;
        spec.seed = bench::bench_seed(100 + static_cast<std::uint64_t>(pt.trial));
        spec.root = 0;
        spec.service = "snapshot";
        spec.link_delay = 4;  // stretch the traversal so churn can hit it
        // Watchdog must outlast a CLEAN traversal (4|E| - 2n + 2 hops), or
        // it kills healthy in-flight runs and burns every attempt.
        const sim::Time clean_time =
            (4 * t.g.edge_count() - 2 * t.g.node_count() + 2) * spec.link_delay;
        spec.retry = core::RetryPolicy{2 * clean_time, /*max_attempts=*/8};
        if (pt.rate > 0.0) {
          scenario::PoissonChurnSpec p;
          p.rate = pt.rate;
          p.start = 0;
          p.end = kWindowEnd;
          p.down_for = kDownFor;
          p.edges.resize(t.g.edge_count());
          for (graph::EdgeId e = 0; e < t.g.edge_count(); ++e) p.edges[e] = e;
          util::Rng rng(spec.seed);
          spec.schedule = scenario::expand_poisson_churn(p, rng);
          scenario::sort_schedule(spec.schedule);
        }
        const scenario::ScenarioResult r = scenario::run_scenario(spec);
        return Outcome{r.complete, r.complete && r.snapshot_match, r.attempts,
                       r.timeline.size()};
      });

  std::size_t next_point = 0;
  for (const Topo& t : topos) {
    for (const double rate : rates) {
      int completed = 0, matched = 0;
      std::uint64_t attempts = 0, events = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const Outcome& o = outcomes[next_point++];
        completed += o.complete ? 1 : 0;
        matched += o.match ? 1 : 0;
        attempts += o.attempts;
        events += o.events;
      }

      char rbuf[32], cbuf[32], mbuf[32], abuf[32];
      std::snprintf(rbuf, sizeof rbuf, "%.4f", rate);
      std::snprintf(cbuf, sizeof cbuf, "%.2f", double(completed) / kTrials);
      std::snprintf(mbuf, sizeof mbuf, "%.2f", double(matched) / kTrials);
      std::snprintf(abuf, sizeof abuf, "%.2f", double(attempts) / kTrials);
      bench::row({t.name, rbuf, std::to_string(kTrials), cbuf, mbuf, abuf,
                  std::to_string(events)},
                 widths);

      obs::JsonObj o;
      o.add("type", "churn");
      o.add("topo", t.name);
      o.add("rate", rate);
      o.add("trials", std::uint64_t{kTrials});
      o.add("completed", std::uint64_t(completed));
      o.add("snapshot_matched", std::uint64_t(matched));
      o.add("total_attempts", attempts);
      o.add("total_events", events);
      metrics.emit(o);
    }
  }
  if (metrics.ok())
    std::fprintf(stderr, "metrics: %s\n", metrics.path().c_str());
  return 0;
}
