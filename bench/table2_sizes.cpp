// Experiment T2-size: reproduce the message-SIZE column of Table 2 and the
// table's footnote ("The message size does not include the DFS part, which
// adds another O(n log n) bits").
//
//   Snapshot: out-band result O(|E|); in-band packets grow to O(|E|).
//   Anycast/Priocast: payload-sized ("data").
//   Blackhole/Critical: O(1).
//   Tag region: O(n log n) bits across all services.

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/fields.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("table2_sizes");
  std::printf("Table 2 reproduction: message sizes (bytes on the wire)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "tag(B)", "~n*logD", "snap max", "O(E)=4E",
              "anycast", "critical", "bh2"},
             {14, 4, 5, 7, 8, 9, 8, 8, 9, 6});
  bench::hr();

  // Sweep points are fully independent (standard_sweep's rng draws happen
  // serially inside it); measure in parallel, emit in sweep order.
  struct PointResult {
    std::size_t tag_bytes = 0;
    std::uint64_t snap_max = 0;
    std::uint64_t any_max = 0;
    std::uint64_t crit_max = 0;
    std::uint64_t bh_max = 0;
  };
  const auto sweep = bench::standard_sweep();
  const auto results = bench::parallel_sweep(
      sweep, [](const bench::SweepGraph& sg, std::size_t) {
        const graph::Graph& g = sg.g;
        const auto n = g.node_count();
        core::TagLayout layout(g);
        PointResult out;
        out.tag_bytes = layout.total_bytes();

        core::SnapshotService snap(g);
        sim::Network net1(g);
        snap.install(net1);
        out.snap_max = snap.run(net1, 0).stats.max_wire_bytes;

        core::AnycastGroupSpec gs;
        gs.gid = 1;
        gs.members[static_cast<graph::NodeId>(n - 1)] = 1;
        core::AnycastService any(g, {gs});
        sim::Network net2(g);
        any.install(net2);
        out.any_max = any.run(net2, 0, 1).stats.max_wire_bytes;

        core::CriticalNodeService crit(g);
        sim::Network net3(g);
        crit.install(net3);
        out.crit_max = crit.run(net3, 0).stats.max_wire_bytes;

        core::BlackholeCountersService bh(g);
        sim::Network net4(g);
        bh.install(net4);
        out.bh_max = bh.run(net4, 0).stats.max_wire_bytes;
        return out;
      });

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& sg = sweep[i];
    const auto& r = results[i];
    const auto n = sg.g.node_count();
    const auto E = sg.g.edge_count();

    // Rough n*log(maxdeg) bound on the traversal tag, in bytes.
    const auto logd = core::bits_for(sg.g.max_degree());
    const auto tag_bound = (2 * n * logd + 7) / 8;

    bench::row({sg.family, util::cat(n), util::cat(E),
                util::cat(r.tag_bytes), util::cat(tag_bound),
                util::cat(r.snap_max), util::cat(4 * E),
                util::cat(r.any_max), util::cat(r.crit_max),
                util::cat(r.bh_max)},
               {14, 4, 5, 7, 8, 9, 8, 8, 9, 6});

    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "table2_sizes")
                     .add("family", sg.family)
                     .add("n", n)
                     .add("edges", E)
                     .add("tag_bytes", r.tag_bytes)
                     .add("tag_bound_bytes", tag_bound)
                     .add("snapshot_max_wire", r.snap_max)
                     .add("anycast_max_wire", r.any_max)
                     .add("critical_max_wire", r.crit_max)
                     .add("bh2_max_wire", r.bh_max));
  }
  bench::hr();
  std::printf(
      "tag(B) = full tag region incl. fixed service fields (~21 B) + the\n"
      "O(n log Delta) per-node DFS state.  snapshot packets additionally\n"
      "carry ~4 B per record = O(|E|); other services stay O(1)-sized\n"
      "(payload + tag), matching the size column of Table 2.\n");
  return 0;
}
