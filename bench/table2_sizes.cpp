// Experiment T2-size: reproduce the message-SIZE column of Table 2 and the
// table's footnote ("The message size does not include the DFS part, which
// adds another O(n log n) bits").
//
//   Snapshot: out-band result O(|E|); in-band packets grow to O(|E|).
//   Anycast/Priocast: payload-sized ("data").
//   Blackhole/Critical: O(1).
//   Tag region: O(n log n) bits across all services.

#include "bench/bench_util.hpp"
#include "core/fields.hpp"
#include "core/services.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("table2_sizes");
  std::printf("Table 2 reproduction: message sizes (bytes on the wire)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "tag(B)", "~n*logD", "snap max", "O(E)=4E",
              "anycast", "critical", "bh2"},
             {14, 4, 5, 7, 8, 9, 8, 8, 9, 6});
  bench::hr();

  for (const auto& sg : bench::standard_sweep()) {
    const graph::Graph& g = sg.g;
    const auto n = g.node_count();
    const auto E = g.edge_count();
    core::TagLayout layout(g);

    core::SnapshotService snap(g);
    sim::Network net1(g);
    snap.install(net1);
    const auto s = snap.run(net1, 0).stats;

    core::AnycastGroupSpec gs;
    gs.gid = 1;
    gs.members[static_cast<graph::NodeId>(n - 1)] = 1;
    core::AnycastService any(g, {gs});
    sim::Network net2(g);
    any.install(net2);
    const auto a = any.run(net2, 0, 1).stats;

    core::CriticalNodeService crit(g);
    sim::Network net3(g);
    crit.install(net3);
    const auto c = crit.run(net3, 0).stats;

    core::BlackholeCountersService bh(g);
    sim::Network net4(g);
    bh.install(net4);
    const auto b = bh.run(net4, 0).stats;

    // Rough n*log(maxdeg) bound on the traversal tag, in bytes.
    const auto logd =
        core::bits_for(g.max_degree());
    const auto tag_bound = (2 * n * logd + 7) / 8;

    bench::row({sg.family, util::cat(n), util::cat(E),
                util::cat(layout.total_bytes()), util::cat(tag_bound),
                util::cat(s.max_wire_bytes), util::cat(4 * E),
                util::cat(a.max_wire_bytes), util::cat(c.max_wire_bytes),
                util::cat(b.max_wire_bytes)},
               {14, 4, 5, 7, 8, 9, 8, 8, 9, 6});

    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "table2_sizes")
                     .add("family", sg.family)
                     .add("n", n)
                     .add("edges", E)
                     .add("tag_bytes", layout.total_bytes())
                     .add("tag_bound_bytes", tag_bound)
                     .add("snapshot_max_wire", s.max_wire_bytes)
                     .add("anycast_max_wire", a.max_wire_bytes)
                     .add("critical_max_wire", c.max_wire_bytes)
                     .add("bh2_max_wire", b.max_wire_bytes));
  }
  bench::hr();
  std::printf(
      "tag(B) = full tag region incl. fixed service fields (~21 B) + the\n"
      "O(n log Delta) per-node DFS state.  snapshot packets additionally\n"
      "carry ~4 B per record = O(|E|); other services stay O(1)-sized\n"
      "(payload + tag), matching the size column of Table 2.\n");
  return 0;
}
