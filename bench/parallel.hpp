#pragma once
// Deterministic parallel sweep driver.
//
// Bench sweeps are embarrassingly parallel: every (topology, n, trial) point
// builds its own Network and derives all randomness from an SS_SEED-based
// per-point stream (bench_seed(stream_base + index)).  parallel_sweep fans
// those points out over a worker pool and returns the results IN ITEM ORDER,
// so everything the caller prints or emits afterwards — stdout tables,
// *.metrics.jsonl rows — is byte-identical to a serial run regardless of
// thread count (timing fields excepted, as always).
//
// Rules for point functions:
//   * no shared mutable state — each point owns its Network/Rng/buffers;
//   * derive randomness only from the point index, never from a shared Rng
//     (a shared stream would make results depend on execution order);
//   * return a value-type result; all printing happens serially afterwards.
//
// Thread count comes from SS_BENCH_THREADS (default: hardware concurrency).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "obs/hist.hpp"

namespace ss::bench {

inline unsigned sweep_threads() {
  const char* s = std::getenv("SS_BENCH_THREADS");
  if (s != nullptr && *s != '\0') {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && *end == '\0' && v >= 1) return static_cast<unsigned>(v);
    std::fprintf(stderr, "warning: ignoring bad SS_BENCH_THREADS '%s'\n", s);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Run fn(items[i], i) for every i on `threads` workers (0 = auto) and
/// return the results in item order.  The result type must be
/// default-constructible.  The first exception thrown by any point is
/// rethrown after all workers join.
template <typename Item, typename Fn>
auto parallel_sweep(const std::vector<Item>& items, Fn fn, unsigned threads = 0)
    -> std::vector<decltype(fn(items.front(), std::size_t{0}))> {
  using R = decltype(fn(items.front(), std::size_t{0}));
  std::vector<R> results(items.size());
  if (items.empty()) return results;
  if (threads == 0) threads = sweep_threads();
  if (threads > items.size()) threads = static_cast<unsigned>(items.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) results[i] = fn(items[i], i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = next.fetch_add(1); i < items.size();
             i = next.fetch_add(1))
          results[i] = fn(items[i], i);
      } catch (...) {
        // Record and stop this worker; siblings finish their points so one
        // bad point does not suppress the rest of the sweep.
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

/// Fold per-point histogram shards (one per sweep item, accessed via
/// `get(result)`) into a single histogram.  Histogram::merge is commutative
/// bucket-count addition and the fold walks results in ITEM order, so the
/// merged histogram — and its to_json() serialization — is byte-identical
/// at any thread count.
template <typename R, typename Get>
inline obs::Histogram merge_hist_shards(const std::vector<R>& results, Get get) {
  obs::Histogram out;
  for (const R& r : results) out.merge(get(r));
  return out;
}

}  // namespace ss::bench
