// Experiment T2-inband: reproduce the IN-BAND message-count column of
// Table 2 ("Overview of the complexities of the different SmartSouth
// services") by measurement.
//
// Paper's rows (in-band #msgs):
//   Snapshot   4|E| - 2n       Anycast   4|E| - 2n     Priocast  8|E| - 4n
//   Blackhole2 4|E|            Critical  4|E| - 2n
//
// We run every service on every topology of the sweep and print measured
// counts next to the paper's formulas.  Exact counts carry a small additive
// constant the paper drops (see EXPERIMENTS.md).

#include <cinttypes>
#include <sstream>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "obs/export.hpp"
#include "sim/network.hpp"
#include "util/strings.hpp"

using namespace ss;

int main() {
  bench::Metrics metrics("table2_inband");
  std::printf("Table 2 reproduction: in-band message counts\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "snapshot", "4E-2n", "anycast", "4E-2n",
              "priocast", "8E-4n", "blackhole2", "~4E", "critical", "4E-2n"},
             {14, 4, 5, 9, 7, 8, 7, 9, 7, 10, 6, 8, 7});
  bench::hr();

  // Each sweep point runs five independent services on its own Networks, so
  // the whole sweep fans out; rows/metrics are emitted serially in sweep
  // order afterwards (byte-identical to a serial run at any thread count).
  struct PointResult {
    std::uint64_t snap_msgs = 0;
    std::uint64_t any_msgs = 0;
    std::uint64_t prio_msgs = 0;
    std::uint64_t bh_msgs = 0;
    std::uint64_t crit_msgs = 0;
    std::string flow_stats;  // ring n=20 only: acceptance ground truth
  };
  const auto sweep = bench::standard_sweep();
  const auto results = bench::parallel_sweep(
      sweep, [](const bench::SweepGraph& sg, std::size_t) {
        const graph::Graph& g = sg.g;
        const auto n = g.node_count();
        PointResult out;

        core::SnapshotService snap(g);
        sim::Network net_snap(g);
        snap.install(net_snap);
        out.snap_msgs = snap.run(net_snap, 0).stats.inband_msgs;

        // Anycast with an unreachable group id measures the full traversal
        // (a delivered anycast stops early).
        core::AnycastGroupSpec gs;
        gs.gid = 1;
        gs.members[static_cast<graph::NodeId>(n - 1)] = 1;
        core::AnycastService any(g, {gs});
        sim::Network net_any(g);
        any.install(net_any);
        out.any_msgs = any.run(net_any, 0, /*gid=*/2).stats.inband_msgs;

        core::AnycastGroupSpec pgs;
        pgs.gid = 1;
        pgs.members[static_cast<graph::NodeId>(n / 2)] = 7;
        core::PriocastService prio(g, {pgs});
        sim::Network net_prio(g);
        prio.install(net_prio);
        out.prio_msgs = prio.run(net_prio, 0, 1).stats.inband_msgs;

        core::BlackholeCountersService bh(g);
        sim::Network net_bh(g);
        bh.install(net_bh);
        out.bh_msgs = bh.run(net_bh, 0).stats.inband_msgs;

        core::CriticalNodeService crit(g);
        sim::Network net_crit(g);
        crit.install(net_crit);
        // Measure at a non-critical node (full traversal, like the paper's
        // row).
        graph::NodeId probe = 0;
        const auto art = graph::articulation_points(g);
        for (graph::NodeId v = 0; v < n; ++v)
          if (!art[v]) {
            probe = v;
            break;
          }
        out.crit_msgs = crit.run(net_crit, probe).stats.inband_msgs;

        // Acceptance ground truth: per-rule hit counters of the snapshot
        // run, the raw material the in-band "smart counters" aggregate.
        // Captured here (the Network dies with the point) and appended to
        // the sidecar serially below.
        if (sg.family == "ring" && n == 20) {
          std::ostringstream os;
          obs::write_flow_stats(os, net_snap, /*only_hit=*/true);
          out.flow_stats = os.str();
        }
        return out;
      });

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& sg = sweep[i];
    const auto& r = results[i];
    const auto n = sg.g.node_count();
    const auto E = sg.g.edge_count();
    bench::row({util::cat(sg.family), util::cat(n), util::cat(E),
                util::cat(r.snap_msgs), util::cat(4 * E - 2 * n),
                util::cat(r.any_msgs), util::cat(4 * E - 2 * n),
                util::cat(r.prio_msgs), util::cat(8 * E - 4 * n),
                util::cat(r.bh_msgs), util::cat(4 * E), util::cat(r.crit_msgs),
                util::cat(4 * E - 2 * n)},
               {14, 4, 5, 9, 7, 8, 7, 9, 7, 10, 6, 8, 7});

    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "table2_inband")
                     .add("family", sg.family)
                     .add("n", n)
                     .add("edges", E)
                     .add("snapshot_msgs", r.snap_msgs)
                     .add("anycast_msgs", r.any_msgs)
                     .add("priocast_msgs", r.prio_msgs)
                     .add("blackhole2_msgs", r.bh_msgs)
                     .add("critical_msgs", r.crit_msgs)
                     .add("formula_4e_2n", 4 * E - 2 * n)
                     .add("formula_8e_4n", 8 * E - 4 * n));
    if (!r.flow_stats.empty()) metrics.stream() << r.flow_stats;
  }
  bench::hr();
  std::printf(
      "Note: exact counts are formula + small constant (snapshot/anycast/"
      "critical: +2;\npriocast: +4 minus the early-exit saving; blackhole2: "
      "4E plus dance overhead\non non-tree edges).  Shapes match Table 2.\n");
  return 0;
}
