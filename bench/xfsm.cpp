// XFSM bench: cost of per-flow state kept in the match-action pipeline.
//
// Workload: a ring topology with one policer host (token-bucket XFSM:
// state-table lookup, transition match, guard counter, state write-back)
// fed a deterministic heavy-tailed flow mix, against the STATELESS path —
// the same packets through a non-host switch's single sink rule.  The gap
// between the two events/sec columns is the price of statefulness; the
// policer run also validates bit-for-bit against the reference interpreter
// and CRT-decodes its banks with one DFS sweep before timing is reported.
//
// Output: stdout table; BENCH_xfsm.json; xfsm.metrics.jsonl sidecar.
//   bench_xfsm [--mice M] [--bucket B] [--out PATH] [--check BASELINE]
// --check compares the DETERMINISTIC fields (flows, packets, delivered,
// dropped, entries, evictions, sweep_msgs) of each (mice, bucket) row
// against a committed baseline and exits 1 on drift — policing fidelity is
// part of the contract, not just throughput.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/eth_types.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "sim/flowgen.hpp"
#include "sim/network.hpp"
#include "xfsm/machines.hpp"
#include "xfsm/service.hpp"

using namespace ss;

namespace {

struct Row {
  std::uint32_t mice = 0;
  std::uint32_t bucket = 0;
  // Deterministic (checked against the committed baseline):
  std::uint64_t flows = 0;      // distinct keys after aggregation
  std::uint64_t packets = 0;    // injected packets (each path)
  std::uint64_t delivered = 0;  // policed path: conforming packets
  std::uint64_t dropped = 0;    // policed path: out-of-profile packets
  std::uint64_t entries = 0;    // per-flow state entries after the run
  std::uint64_t evictions = 0;  // state-table FIFO evictions
  std::uint64_t sweep_msgs = 0; // in-band messages of one bank read-out
  // Timing (informational):
  double policed_us = 0.0;
  double stateless_us = 0.0;
  // Per-worker self-profiling shard (folded after the sweep with merge()).
  util::prof::StageProfile prof;
  double meps(double us) const {
    return us > 0.0 ? double(packets) / us : 0.0;
  }
};

Row measure_point(std::uint32_t mice, std::uint32_t bucket) {
  Row r;
  r.mice = mice;
  r.bucket = bucket;
  const graph::Graph g = graph::make_ring(16);

  xfsm::XfsmParams p;
  p.hosts = {0};
  p.program = xfsm::make_policer(bucket);
  xfsm::XfsmService svc(g, p);
  sim::Network net(g, 1, bench::bench_seed(19));
  svc.install(net);

  sim::FlowWorkloadConfig fc;
  fc.seed = bench::bench_seed(20);
  fc.key_bits = 20;
  fc.elephants = 16;
  fc.mice = mice;
  fc.elephant_min = 64;
  fc.elephant_max = 256;
  const std::vector<sim::FlowSpec> flows = sim::make_flow_workload(fc);
  r.flows = flows.size();
  for (const sim::FlowSpec& f : flows) r.packets += f.packets;

  const auto t0 = std::chrono::steady_clock::now();
  svc.pump_flows(net, flows);
  const auto t1 = std::chrono::steady_clock::now();

  const xfsm::XfsmSweepResult swept = svc.sweep(net, 8);
  const xfsm::XfsmValidation val = svc.validate(net, &swept);
  if (!swept.complete || !val.ok()) {
    std::fprintf(stderr,
                 "FATAL: mice=%u bucket=%u pipeline/interpreter divergence\n",
                 mice, bucket);
    std::exit(1);
  }
  r.delivered = val.delivered;
  r.dropped = val.expected_drops;
  r.entries = val.state_entries;
  r.evictions = val.evictions;
  r.sweep_msgs = swept.stats.inband_msgs;

  // Stateless path: the identical packets through a NON-host switch, where
  // the compiled pipeline's single flow-ingest sink rule delivers locally —
  // match-action only, no state table, no guard chain.
  const core::TagLayout& L = svc.layout();
  sim::Network net2(g, 1, bench::bench_seed(21));
  svc.install(net2);
  const auto t2 = std::chrono::steady_clock::now();
  std::uint64_t injected = 0;
  for (const sim::FlowSpec& f : flows)
    for (std::uint64_t k = 0; k < f.packets; ++k) {
      ofp::Packet pkt = L.make_packet(core::kEthFlow);
      L.set(pkt, L.flow_key(), f.fkey);
      pkt.payload_bytes = sim::flow_packet_bytes(f.fkey);
      net2.host_inject(8, 1, std::move(pkt));
      if (++injected % 65536 == 0) net2.run();
    }
  net2.run();
  const auto t3 = std::chrono::steady_clock::now();
  if (net2.local_deliveries().size() != r.packets) {
    std::fprintf(stderr, "FATAL: stateless path dropped packets\n");
    std::exit(1);
  }

  r.policed_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  r.stateless_us = std::chrono::duration<double, std::micro>(t3 - t2).count();

  // Self-profiling pass: re-run the policed path and the bank read-out with
  // the stage profiler armed, on a FRESH network, so the timed runs above
  // stay unperturbed (an armed site pays two clock reads per op).
  {
    sim::Network net3(g, 1, bench::bench_seed(19));
    svc.install(net3);
    util::prof::StageProfile* prev = util::prof::set_thread_profile(&r.prof);
    svc.pump_flows(net3, flows);
    (void)svc.sweep(net3, 8);
    util::prof::set_thread_profile(prev);
  }
  return r;
}

int check_baseline(const std::vector<Row>& rows, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "--check: cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json_parse(ss.str());
  if (!doc || !doc->is_object() || doc->get("rows") == nullptr ||
      !doc->get("rows")->is_array()) {
    std::fprintf(stderr, "--check: %s is not a BENCH_xfsm.json document\n",
                 path.c_str());
    return 1;
  }
  int compared = 0, failed = 0;
  for (const Row& r : rows) {
    for (const obs::JsonValue& b : doc->get("rows")->array) {
      if (b.u64("mice") != r.mice || b.u64("bucket") != r.bucket) continue;
      ++compared;
      const bool ok =
          b.u64("flows") == r.flows && b.u64("packets") == r.packets &&
          b.u64("delivered") == r.delivered && b.u64("dropped") == r.dropped &&
          b.u64("entries") == r.entries &&
          b.u64("evictions") == r.evictions &&
          b.u64("sweep_msgs") == r.sweep_msgs;
      if (!ok) {
        ++failed;
        std::fprintf(
            stderr,
            "DRIFT mice=%u bucket=%u: flows %llu->%llu packets %llu->%llu "
            "delivered %llu->%llu dropped %llu->%llu entries %llu->%llu "
            "evict %llu->%llu msgs %llu->%llu\n",
            r.mice, r.bucket, (unsigned long long)b.u64("flows"),
            (unsigned long long)r.flows, (unsigned long long)b.u64("packets"),
            (unsigned long long)r.packets,
            (unsigned long long)b.u64("delivered"),
            (unsigned long long)r.delivered,
            (unsigned long long)b.u64("dropped"),
            (unsigned long long)r.dropped,
            (unsigned long long)b.u64("entries"),
            (unsigned long long)r.entries,
            (unsigned long long)b.u64("evictions"),
            (unsigned long long)r.evictions,
            (unsigned long long)b.u64("sweep_msgs"),
            (unsigned long long)r.sweep_msgs);
      }
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "--check: no baseline rows matched this run\n");
    return 1;
  }
  std::fprintf(stderr, "--check: %d row(s) compared against %s, %d drifted\n",
               compared, path.c_str(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> mice_counts = {5000, 20000};
  std::vector<std::uint32_t> buckets = {2, 8};
  std::string out_path = "BENCH_xfsm.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--mice")
      mice_counts = {
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10))};
    else if (a == "--bucket")
      buckets = {static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10))};
    else if (a == "--out")
      out_path = next();
    else if (a == "--check")
      check_path = next();
    else {
      std::fprintf(stderr,
                   "usage: bench_xfsm [--mice M] [--bucket B] [--out PATH] "
                   "[--check BASELINE]\n");
      return 2;
    }
  }

  bench::Metrics metrics("xfsm");
  const std::vector<int> widths = {7, 7, 7, 9, 9, 8, 8, 6, 6, 11, 12, 8, 8};
  bench::row({"mice", "bucket", "flows", "packets", "deliver", "dropped",
              "entries", "evict", "msgs", "policed_us", "stateless_us",
              "pol_mps", "stl_mps"},
             widths);
  bench::hr(118);

  struct Point {
    std::uint32_t mice;
    std::uint32_t bucket;
  };
  std::vector<Point> points;
  for (const std::uint32_t m : mice_counts)
    for (const std::uint32_t b : buckets) points.push_back({m, b});

  // Timing benches stay serial by default (workers would contend for cores);
  // SS_BENCH_THREADS>1 opts in — the deterministic columns are unaffected.
  const std::vector<Row> rows = bench::parallel_sweep(
      points,
      [&](const Point& p, std::size_t) {
        return measure_point(p.mice, p.bucket);
      },
      std::getenv("SS_BENCH_THREADS") != nullptr ? 0u : 1u);

  obs::JsonArr arr;
  for (const Row& r : rows) {
    char pu[32], su[32], pm[32], sm[32];
    std::snprintf(pu, sizeof pu, "%.0f", r.policed_us);
    std::snprintf(su, sizeof su, "%.0f", r.stateless_us);
    std::snprintf(pm, sizeof pm, "%.2f", r.meps(r.policed_us));
    std::snprintf(sm, sizeof sm, "%.2f", r.meps(r.stateless_us));
    bench::row({std::to_string(r.mice), std::to_string(r.bucket),
                std::to_string(r.flows), std::to_string(r.packets),
                std::to_string(r.delivered), std::to_string(r.dropped),
                std::to_string(r.entries), std::to_string(r.evictions),
                std::to_string(r.sweep_msgs), pu, su, pm, sm},
               widths);

    obs::JsonObj o;
    o.add("mice", r.mice);
    o.add("bucket", r.bucket);
    o.add("flows", r.flows);
    o.add("packets", r.packets);
    o.add("delivered", r.delivered);
    o.add("dropped", r.dropped);
    o.add("entries", r.entries);
    o.add("evictions", r.evictions);
    o.add("sweep_msgs", r.sweep_msgs);
    o.add("policed_us", r.policed_us);
    o.add("stateless_us", r.stateless_us);
    arr.push(o);

    obs::JsonObj m;
    m.add("type", "xfsm");
    m.add("mice", r.mice);
    m.add("bucket", r.bucket);
    m.add("packets", r.packets);
    m.add("delivered", r.delivered);
    m.add("policed_us", r.policed_us);
    m.add("stateless_us", r.stateless_us);
    metrics.emit(m);
  }

  // Fold the per-point profiling shards and append them to the sidecar.
  util::prof::StageProfile prof;
  for (const Row& r : rows) prof.merge(r.prof);
  bench::emit_stage_profile(metrics, prof);
  bench::print_stage_profile(prof);

  if (!check_path.empty()) {
    const int rc = check_baseline(rows, check_path);
    if (rc != 0) return rc;
  }

  if (!out_path.empty()) {
    obs::JsonObj doc;
    doc.add("schema", "ss.bench.xfsm.v1");
    doc.add("bench", "xfsm");
    doc.add_u("seed", bench::bench_seed());
    doc.add_raw("rows", arr.str());
    std::ofstream out(out_path, std::ios::trunc);
    out << doc.str() << "\n";
    std::fprintf(stderr, "baseline: %s\n", out_path.c_str());
  }
  if (metrics.ok())
    std::fprintf(stderr, "metrics: %s\n", metrics.path().c_str());
  return 0;
}
