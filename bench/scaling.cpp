// Experiment F-scale: the paper's feasibility estimate (§3.4 remark):
// "using switches like our NoviKit 250 switch (32MB flow table space and
// full support for extended match fields) and if the size of the data
// section of packets is limited to 0.5KB, we believe that our algorithms
// scale up to a few hundred nodes."
//
// Series produced:
//  (a) compiled state per switch (entries, groups, bytes) vs n and Delta;
//  (b) the largest n per family whose per-switch state fits 32 MB;
//  (c) snapshot fragment counts under a 0.5 KB data section;
//  (d) traversal wall-clock in the simulator vs n (engineering series).

#include <chrono>

#include "bench/bench_util.hpp"
#include "bench/parallel.hpp"
#include "core/services.hpp"
#include "ofp/optimize.hpp"
#include "ofp/space.hpp"
#include "util/strings.hpp"

using namespace ss;

namespace {

ofp::SpaceReport max_switch_space(const graph::Graph& g, core::ServiceKind kind) {
  core::TagLayout layout(g);
  core::CompilerOptions opts;
  opts.kind = kind;
  if (kind == core::ServiceKind::kAnycast || kind == core::ServiceKind::kPriocast) {
    core::AnycastGroupSpec gs;
    gs.gid = 1;
    gs.members[0] = 1;
    opts.groups.push_back(gs);
  }
  core::TemplateCompiler compiler(g, layout, opts);
  ofp::SpaceReport worst;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    ofp::Switch sw(v, g.degree(v));
    compiler.install_switch(sw, v);
    auto r = ofp::measure_space(sw);
    if (r.total_bytes() > worst.total_bytes()) worst = r;
  }
  return worst;
}

}  // namespace

int main() {
  bench::Metrics metrics("scaling");
  std::printf("(a) Per-switch compiled state vs network size (snapshot service)\n");
  bench::hr();
  bench::row({"topology", "n", "|E|", "maxDeg", "entries", "groups", "buckets",
              "bytes", "fits 32MB"},
             {12, 5, 6, 6, 8, 7, 8, 10, 9});
  bench::hr();
  util::Rng rng(bench::bench_seed(9));
  std::vector<bench::SweepGraph> sweep;
  for (std::size_t n : {20, 50, 100, 200, 400}) {
    sweep.push_back({"ring", n, graph::make_ring(n)});
    sweep.push_back({"grid", n, graph::make_grid(n / 10, 10)});
    sweep.push_back({"reg4", n, graph::make_random_regular(n, 4, rng)});
    sweep.push_back({"tree3", n, graph::make_dary_tree(n, 3)});
  }
  sweep.push_back({"fattree k=8", 80, graph::make_fat_tree(8)});
  sweep.push_back({"fattree k=12", 180, graph::make_fat_tree(12)});

  // Graph construction stays serial above (the shared rng stream defines the
  // sweep); only the per-point measurement fans out, and rows are emitted in
  // item order, so the table and metrics are byte-identical at any thread
  // count.
  const auto reports =
      bench::parallel_sweep(sweep, [](const bench::SweepGraph& sg, std::size_t) {
        return max_switch_space(sg.g, core::ServiceKind::kSnapshot);
      });
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& sg = sweep[i];
    const auto& r = reports[i];
    bench::row({sg.family, util::cat(sg.n), util::cat(sg.g.edge_count()),
                util::cat(sg.g.max_degree()), util::cat(r.flow_entries),
                util::cat(r.groups), util::cat(r.buckets),
                util::cat(util::human_bytes(r.total_bytes())),
                r.fits_novikit() ? "yes" : "NO"},
               {12, 5, 6, 6, 8, 7, 8, 10, 9});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "scaling")
                     .add("series", "state_vs_n")
                     .add("family", sg.family)
                     .add("n", sg.n)
                     .add("edges", sg.g.edge_count())
                     .add("max_degree", sg.g.max_degree())
                     .add("flow_entries", r.flow_entries)
                     .add("groups", r.groups)
                     .add("buckets", r.buckets)
                     .add("state_bytes", r.total_bytes())
                     .add("fits_32mb", r.fits_novikit()));
  }
  bench::hr();

  std::printf("\n(b) Per-switch state by service (reg4, n = 100)\n");
  bench::hr();
  graph::Graph g100 = graph::make_random_regular(100, 4, rng);
  const std::vector<std::pair<const char*, core::ServiceKind>> kinds = {
      {"plain", core::ServiceKind::kPlain},
      {"snapshot", core::ServiceKind::kSnapshot},
      {"anycast", core::ServiceKind::kAnycast},
      {"priocast", core::ServiceKind::kPriocast},
      {"blackhole-ttl", core::ServiceKind::kBlackholeTtl},
      {"blackhole-ctr", core::ServiceKind::kBlackholeCounters},
      {"critical", core::ServiceKind::kCritical},
      {"load-infer", core::ServiceKind::kLoadInference},
  };
  bench::row({"service", "entries", "groups", "buckets", "bytes"},
             {14, 8, 7, 8, 10});
  bench::hr();
  const auto kind_reports = bench::parallel_sweep(
      kinds, [&](const std::pair<const char*, core::ServiceKind>& k,
                 std::size_t) { return max_switch_space(g100, k.second); });
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto& r = kind_reports[i];
    bench::row({kinds[i].first, util::cat(r.flow_entries), util::cat(r.groups),
                util::cat(r.buckets), util::cat(util::human_bytes(r.total_bytes()))},
               {14, 8, 7, 8, 10});
  }
  bench::hr();

  std::printf(
      "\n(c) Snapshot under a 0.5 KB data section (paper's packet budget)\n");
  bench::hr();
  bench::row({"topology", "n", "records", "bytes/full", "fragments"},
             {12, 5, 8, 10, 9});
  bench::hr();
  std::vector<bench::SweepGraph> frag_cases;
  for (std::size_t n : {20, 50, 100, 200, 300})
    frag_cases.push_back({"reg4", n, graph::make_random_regular(n, 4, rng)});
  struct FragRow {
    std::size_t records = 0;
    std::uint64_t full_bytes = 0;
    std::uint64_t fragments = 0;
  };
  const auto frag_rows = bench::parallel_sweep(
      frag_cases, [](const bench::SweepGraph& sg, std::size_t) {
        // 0.5 KB of 4-byte records = 128 labels; with <= 2deg+2 records per
        // visit, a limit of 128 / (2*4+2) = 12 visits per fragment is safe.
        core::SnapshotService svc(sg.g, /*fragment_limit=*/12);
        sim::Network net(sg.g);
        svc.install(net);
        auto res = svc.run(net, 0);
        core::SnapshotService whole(sg.g);
        sim::Network net2(sg.g);
        whole.install(net2);
        auto full = whole.run(net2, 0);
        return FragRow{res.edges.size(),
                       static_cast<std::uint64_t>(full.stats.max_wire_bytes),
                       static_cast<std::uint64_t>(res.fragments)};
      });
  for (std::size_t i = 0; i < frag_cases.size(); ++i)
    bench::row({"reg4", util::cat(frag_cases[i].n),
                util::cat(frag_rows[i].records), util::cat(frag_rows[i].full_bytes),
                util::cat(frag_rows[i].fragments)},
               {12, 5, 8, 10, 9});
  bench::hr();

  std::printf("\n(d) Traversal wall-clock in the simulator (snapshot)\n");
  bench::hr();
  bench::row({"n", "|E|", "inband msgs", "sim us/run"}, {6, 7, 11, 10});
  bench::hr();
  std::vector<bench::SweepGraph> wall_cases;
  for (std::size_t n : {20, 50, 100, 200, 400})
    wall_cases.push_back({"reg4", n, graph::make_random_regular(n, 4, rng)});
  struct WallRow {
    std::uint64_t inband_msgs = 0;
    long long us = 0;
  };
  // Timing series: stays serial unless SS_BENCH_THREADS opts in — parallel
  // runs contend for cores and distort per-run wall-clock.  The msg counts
  // are deterministic either way.
  const auto wall_rows = bench::parallel_sweep(
      wall_cases,
      [](const bench::SweepGraph& sg, std::size_t) {
        core::SnapshotService svc(sg.g);
        sim::Network net(sg.g);
        svc.install(net);
        const auto t0 = std::chrono::steady_clock::now();
        auto res = svc.run(net, 0);
        const auto t1 = std::chrono::steady_clock::now();
        return WallRow{
            res.stats.inband_msgs,
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()};
      },
      std::getenv("SS_BENCH_THREADS") != nullptr ? 0u : 1u);
  for (std::size_t i = 0; i < wall_cases.size(); ++i) {
    const auto& sg = wall_cases[i];
    bench::row({util::cat(sg.n), util::cat(sg.g.edge_count()),
                util::cat(wall_rows[i].inband_msgs), util::cat(wall_rows[i].us)},
               {6, 7, 11, 10});
    metrics.emit(obs::JsonObj()
                     .add("type", "bench")
                     .add("bench", "scaling")
                     .add("series", "sim_wallclock")
                     .add("n", sg.n)
                     .add("edges", sg.g.edge_count())
                     .add("inband_msgs", wall_rows[i].inband_msgs)
                     .add("sim_us", wall_rows[i].us));
  }
  bench::hr();

  std::printf(
      "\n(e) Packet tag region vs n — the binding constraint for 'a few\n"
      "hundred nodes' (0.5 KB data section; per-switch rules are O(Delta^2)\n"
      "and independent of n)\n");
  bench::hr();
  bench::row({"n", "deg", "tag bytes", "fits 0.5KB"}, {6, 5, 9, 10});
  bench::hr();
  for (std::size_t n : {50, 100, 200, 400, 600, 700, 1000}) {
    graph::Graph g = graph::make_random_regular(n, 4, rng);
    core::TagLayout layout(g);
    bench::row({util::cat(n), util::cat(g.max_degree()),
                util::cat(layout.total_bytes()),
                layout.total_bytes() <= 512 ? "yes" : "NO"},
               {6, 5, 9, 10});
  }
  bench::hr();

  std::printf(
      "\n(f) Group-dedup optimizer: per-switch state before/after\n");
  bench::hr();
  bench::row({"topology", "deg", "groups", "after", "bytes", "after B"},
             {12, 5, 7, 6, 9, 9});
  bench::hr();
  {
    util::Rng orng(31);
    std::vector<std::pair<std::string, graph::Graph>> cases;
    cases.emplace_back("ring", graph::make_ring(20));
    cases.emplace_back("reg4", graph::make_random_regular(20, 4, orng));
    cases.emplace_back("star8", graph::make_star(9));
    cases.emplace_back("fattree k=4", graph::make_fat_tree(4));
    for (auto& [name, g] : cases) {
      core::TagLayout layout(g);
      core::CompilerOptions opts;
      opts.kind = core::ServiceKind::kSnapshot;
      core::TemplateCompiler compiler(g, layout, opts);
      graph::NodeId big = 0;
      for (graph::NodeId v = 0; v < g.node_count(); ++v)
        if (g.degree(v) > g.degree(big)) big = v;
      ofp::Switch sw(big, g.degree(big));
      compiler.install_switch(sw, big);
      const auto before = ofp::measure_space(sw);
      ofp::dedup_groups(sw);
      const auto after = ofp::measure_space(sw);
      bench::row({name, util::cat(g.degree(big)), util::cat(before.groups),
                  util::cat(after.groups),
                  util::cat(util::human_bytes(before.total_bytes())),
                  util::cat(util::human_bytes(after.total_bytes()))},
                 {12, 5, 7, 6, 9, 9});
    }
  }
  bench::hr();
  std::printf(
      "Verdict on the paper's claim: with bounded-degree fabrics the\n"
      "per-switch state is far below 32 MB even at n = 400, and a 0.5 KB\n"
      "data section needs only ~n/12 snapshot fragments — 'a few hundred\n"
      "nodes' is conservative for low-degree topologies; state grows\n"
      "O(Delta^2) with port count, which is the real limiter (fat-tree k=12).\n");
  return 0;
}
