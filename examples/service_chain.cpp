// In-band service chaining with chained anycast (§3.2).
//
// The paper: "Anycasts can easily be chained, in the sense that sequences
// of middleboxes can be specified which need to be traversed" (citing
// SIMPLE [14]).  Each chain segment is an anycast group; when the packet
// reaches a member it is handed to the local middlebox, its traversal
// state is wiped in the pipeline, and it restarts as a fresh DFS root
// hunting for the next segment — all with pre-installed rules.

#include <cstdio>

#include "core/services.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"

int main() {
  using namespace ss;

  graph::Graph topo = graph::make_grid(4, 5);  // 20 switches

  const std::uint32_t kFirewall = 1, kDpi = 2, kLoadBalancer = 3;
  core::AnycastGroupSpec fw{kFirewall, {{2, 1}, {17, 1}}};       // two firewalls
  core::AnycastGroupSpec dpi{kDpi, {{10, 1}}};                   // one DPI box
  core::AnycastGroupSpec lb{kLoadBalancer, {{19, 1}, {4, 1}}};   // two LBs

  core::ChainedAnycastService svc(topo, {fw, dpi, lb});

  auto show = [&](sim::Network& net, const char* label) {
    auto res = svc.run(net, /*from=*/0, {kFirewall, kDpi, kLoadBalancer});
    std::printf("%-28s chain %s:", label, res.completed ? "completed" : "BROKEN");
    for (auto hop : res.hops) std::printf("  -> %u", hop);
    std::printf("   (%llu in-band msgs, %llu controller msgs)\n",
                static_cast<unsigned long long>(res.stats.inband_msgs),
                static_cast<unsigned long long>(res.stats.outband_to_ctrl));
  };

  {
    sim::Network net(topo);
    svc.install(net);
    show(net, "healthy fabric:");
  }
  {
    // Take down the links around firewall #1 — the chain silently fails
    // over to the second firewall instance.
    sim::Network net(topo);
    svc.install(net);
    for (graph::PortNo p = 1; p <= topo.degree(2); ++p)
      net.set_link_up(topo.edge_at(2, p), false);
    show(net, "firewall 2 isolated:");
  }
  {
    // Cut the sole DPI box: the chain stalls after the firewall segment,
    // exposing the missing middlebox.
    sim::Network net(topo);
    svc.install(net);
    for (graph::PortNo p = 1; p <= topo.degree(10); ++p)
      net.set_link_up(topo.edge_at(10, p), false);
    show(net, "DPI box isolated:");
  }
  return 0;
}
