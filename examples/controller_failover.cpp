// Controller fail-over via priocast (§3.2).
//
// The paper's motivating scenario: "priocast could be useful to find an
// alternative in-band path to the controller, if the management port of
// the controller cannot be reached", and with a distributed control plane,
// "a packet must reach a close controller".
//
// Setup: a 6x6 torus fabric with a primary controller attached at switch 0
// (priority 100) and backups at switches 17 and 35 (priorities 50 and 10).
// A switch in distress sends ONE priocast packet; the data plane delivers
// it to the highest-priority controller that is still reachable — no
// topology knowledge, no controller involvement, robust to link failures.

#include <cstdio>

#include "core/services.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ss;

  graph::Graph topo = graph::make_torus(6, 6);
  const std::uint32_t kControllers = 1;

  core::AnycastGroupSpec controllers;
  controllers.gid = kControllers;
  controllers.members[0] = 100;   // primary
  controllers.members[17] = 50;   // regional backup
  controllers.members[35] = 10;   // last resort
  core::PriocastService priocast(topo, {controllers});

  auto report = [&](sim::Network& net, const char* when) {
    auto res = priocast.run(net, /*from=*/20, kControllers);
    if (res.delivered_at) {
      std::printf("%-34s -> controller at switch %u  (%llu in-band msgs)\n", when,
                  *res.delivered_at,
                  static_cast<unsigned long long>(res.stats.inband_msgs));
    } else {
      std::printf("%-34s -> NO controller reachable\n", when);
    }
  };

  {
    sim::Network net(topo);
    priocast.install(net);
    report(net, "healthy network");
  }
  {
    sim::Network net(topo);
    priocast.install(net);
    // Cut every link of switch 0: the primary is unreachable.
    for (graph::PortNo p = 1; p <= topo.degree(0); ++p)
      net.set_link_up(topo.edge_at(0, p), false);
    report(net, "primary isolated");
  }
  {
    sim::Network net(topo);
    priocast.install(net);
    for (graph::PortNo p = 1; p <= topo.degree(0); ++p)
      net.set_link_up(topo.edge_at(0, p), false);
    for (graph::PortNo p = 1; p <= topo.degree(17); ++p)
      net.set_link_up(topo.edge_at(17, p), false);
    report(net, "primary + regional isolated");
  }
  {
    sim::Network net(topo);
    priocast.install(net);
    // Heavy random damage: 30% of links down; fast failover routes around.
    util::Rng rng(4);
    for (graph::EdgeId e = 0; e < topo.edge_count(); ++e)
      if (rng.chance(0.3)) net.set_link_up(e, false);
    report(net, "30% of links failed");
  }
  return 0;
}
