// Troubleshooting silent failures (§3.3).
//
// A multi-layer carrier network develops a blackhole: a link that stays UP
// (port liveness fine, LLDP happy) but silently drops every packet.  This
// example walks the paper's two in-band detection solutions plus the
// packet-loss monitoring extension:
//
//   1. TTL binary search  — ~2 log|E| controller round-trips;
//   2. smart counters     — two trigger packets and one report, total 3
//                           out-of-band messages regardless of network size;
//   3. loss monitoring    — per-port in/out counters compared across every
//                           link by one traversal, catching partial loss.

#include <cstdio>

#include "core/services.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ss;
  util::Rng rng(77);

  graph::Graph topo = graph::make_random_regular(24, 4, rng);
  // The operator's nightmare: switch 7's second port eats every packet.
  const graph::EdgeId victim = topo.edge_at(7, 2);
  std::printf("planted blackhole: edge %u = %u:%u-%u:%u (direction %u->)\n\n",
              victim, topo.edge(victim).a.node, topo.edge(victim).a.port,
              topo.edge(victim).b.node, topo.edge(victim).b.port, 7u);

  // --- Solution 1: TTL binary search -------------------------------------
  {
    core::BlackholeTtlService svc(topo);
    sim::Network net(topo);
    svc.install(net);
    net.set_blackhole_from(victim, 7, true);
    auto res = svc.run(net, /*root=*/0,
                       static_cast<std::uint32_t>(4 * topo.edge_count() + 4));
    std::printf("[TTL search]    found=%s at switch %u port %u — %u probes, "
                "%llu out-of-band msgs\n",
                res.blackhole_found ? "yes" : "no", res.at_switch, res.out_port,
                res.probes,
                static_cast<unsigned long long>(res.stats.outband_total()));
  }

  // --- Solution 2: smart counters ----------------------------------------
  {
    core::BlackholeCountersService svc(topo);
    sim::Network net(topo);
    svc.install(net);
    net.set_blackhole_from(victim, 7, true);
    auto res = svc.run(net, 0);
    for (const auto& r : res.reports)
      std::printf("[smart counter] blackhole at switch %u port %u — "
                  "%llu out-of-band msgs total\n",
                  r.at_switch, r.out_port,
                  static_cast<unsigned long long>(res.stats.outband_total()));
    if (res.reports.empty()) std::printf("[smart counter] nothing found\n");
  }

  // --- Extension: partial packet loss ------------------------------------
  {
    core::PacketLossMonitor mon(topo, {7, 11, 13});
    sim::Network net(topo, 1, 42);
    mon.install(net);
    // A flaky optic on another link drops 20% of traffic for a while.
    const graph::EdgeId flaky = topo.edge_at(3, 1);
    net.set_loss_from(flaky, 3, 0.2);
    mon.send_data(net, 3, 1, 40);
    net.set_loss_from(flaky, 3, 0.0);

    auto res = mon.detect(net, 0);
    if (res.reports.empty()) {
      std::printf("[loss monitor]  no loss detected\n");
    } else {
      for (const auto& r : res.reports)
        std::printf("[loss monitor]  counter mismatch at switch %u port %u "
                    "(flaky link was edge %u)\n",
                    r.at_switch, r.in_port, flaky);
    }
  }
  return 0;
}
