// Quickstart: build a small OpenFlow network, install the SmartSouth
// snapshot service, and collect the topology fully in-band.
//
//   $ ./examples/quickstart
//
// What happens under the hood:
//   1. the compiler installs match-action tables + fast-failover groups on
//      every switch (the OFFLINE stage);
//   2. one trigger packet is injected at switch 0 and performs a DFS of the
//      whole network, recording every node and link into its label stack
//      (the RUNTIME stage — no controller involvement);
//   3. the packet returns to the controller, which decodes the topology.

#include <cstdio>

#include "core/services.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"

int main() {
  using namespace ss;

  // A 4x4 grid fabric: 16 switches, 24 links.
  graph::Graph topo = graph::make_grid(4, 4);
  sim::Network net(topo);

  // Offline stage: compile & install the snapshot rules.
  core::SnapshotService snapshot(topo);
  snapshot.install(net);

  // Take a link down to show that the snapshot sees the LIVE topology.
  net.set_link_up(topo.edge_at(5, 1), false);

  // Runtime stage: one trigger packet from switch 0.
  core::SnapshotResult res = snapshot.run(net, /*root=*/0);

  std::printf("snapshot complete: %s\n", res.complete ? "yes" : "no");
  std::printf("switches seen:     %zu / %zu\n", res.nodes.size(), topo.node_count());
  std::printf("links seen:        %zu / %zu (one taken down)\n", res.edges.size(),
              topo.edge_count());
  std::printf("in-band messages:  %llu (paper: 4|E| - 2n)\n",
              static_cast<unsigned long long>(res.stats.inband_msgs));
  std::printf("controller msgs:   %llu (1 request + 1 result)\n",
              static_cast<unsigned long long>(res.stats.outband_total()));
  std::printf("\ndiscovered links (u:port-v:port):\n%s\n", res.canonical().c_str());
  return 0;
}
