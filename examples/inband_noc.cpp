// A fully in-band network operations center (§3.4 remark: "all out-of-band
// messages can be sent in-band to any server connected to the first node of
// the traversal, thereby allowing complete in-band monitoring").
//
// A monitoring server hangs off switch 0 (the collector).  Every service
// report — snapshot results, blackhole alarms, criticality verdicts — is
// re-typed in the data plane and forwarded hop by hop to the collector's
// LOCAL port.  The OpenFlow control channel is used exactly once per
// operation, to inject the trigger; switches never talk to the controller.

#include <cstdio>

#include "core/monitor.hpp"
#include "core/services.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"

int main() {
  using namespace ss;

  graph::Graph topo = graph::make_torus(5, 5);
  const graph::NodeId kCollector = 0;

  std::printf("in-band NOC at switch %u on a 5x5 torus (%zu links)\n\n",
              kCollector, topo.edge_count());

  // --- Health polling -----------------------------------------------------
  {
    core::TopologyMonitor mon(topo, kCollector);
    sim::Network net(topo);
    mon.install(net);
    auto d1 = mon.poll(net, /*root=*/12);
    std::printf("[poll 1] %-8s  switch->controller msgs: %llu\n",
                d1.healthy ? "healthy" : "ALARM",
                static_cast<unsigned long long>(d1.stats.outband_to_ctrl));
    net.set_link_up(topo.edge_at(17, 1), false);
    auto d2 = mon.poll(net, 12);
    std::printf("[poll 2] %-8s  missing:", d2.healthy ? "healthy" : "ALARM");
    for (auto& l : d2.missing_links) std::printf(" %s", l.c_str());
    std::printf("  (still %llu ctrl msgs)\n",
                static_cast<unsigned long long>(d2.stats.outband_to_ctrl));
  }

  // --- Blackhole alarming -------------------------------------------------
  {
    core::BlackholeCountersService bh(topo, 16, kCollector);
    sim::Network net(topo);
    bh.install(net);
    net.set_blackhole_from(topo.edge_at(13, 3), 13, true);
    auto res = bh.run(net, /*root=*/24);
    for (auto& r : res.reports)
      std::printf("[blackhole] switch %u port %u — report traveled in-band "
                  "(%llu ctrl msgs)\n",
                  r.at_switch, r.out_port,
                  static_cast<unsigned long long>(res.stats.outband_to_ctrl));
  }

  // --- Maintenance verdicts ----------------------------------------------
  {
    core::CriticalNodeService crit(topo, kCollector);
    core::CriticalLinkService critlink(topo, kCollector);
    sim::Network net(topo);
    crit.install(net);
    auto res = crit.run(net, 7);
    std::printf("[critical?] switch 7: %s (in-band verdict)\n",
                res.critical.value_or(false) ? "yes" : "no");
    sim::Network net2(topo);
    critlink.install(net2);
    auto lres = critlink.run(net2, 7, 2);
    std::printf("[bridge?]   link 7:2: %s (in-band verdict)\n",
                lres.critical.value_or(false) ? "yes" : "no");
  }

  std::printf("\nall reports reached the NOC via the data plane only.\n");
  return 0;
}
