// Maintenance planning with critical-node detection (§3.4).
//
// The paper: a node is critical if removing it partitions the network —
// otherwise it "could, e.g., be removed or turned off for maintenance or
// energy conservation purposes".  The check runs in-band: the controller
// asks the switch itself, which answers with one traversal and a 1-bit
// verdict, instead of pulling the whole topology.
//
// Scenario: an operator wants to power down switches one by one for
// firmware upgrades.  For each candidate we ask the data plane whether the
// network can spare it right now (i.e., with the current link failures).

#include <cstdio>
#include <vector>

#include "core/services.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"

int main() {
  using namespace ss;

  // A metro ring with two data-center spurs.
  graph::Graph topo = graph::make_ring(8);
  const auto dc1 = topo.add_node();  // node 8 hangs off 1
  const auto dc2 = topo.add_node();  // node 9 hangs off 5
  topo.add_edge(1, dc1);
  topo.add_edge(5, dc2);

  core::CriticalNodeService svc(topo);

  std::printf("healthy ring: which switches are safe to power down?\n");
  for (graph::NodeId v = 0; v < topo.node_count(); ++v) {
    sim::Network net(topo);
    svc.install(net);
    auto res = svc.run(net, v);
    std::printf("  switch %u: %-12s (%llu in-band msgs, %llu out-of-band)\n", v,
                res.critical.value_or(false) ? "CRITICAL" : "safe",
                static_cast<unsigned long long>(res.stats.inband_msgs),
                static_cast<unsigned long long>(res.stats.outband_total()));
  }

  std::printf("\nafter a ring link fails (2-3), the answers change:\n");
  const graph::EdgeId cut = topo.edge_at(2, 2);
  for (graph::NodeId v : std::vector<graph::NodeId>{0, 1, 4, 6}) {
    sim::Network net(topo);
    svc.install(net);
    net.set_link_up(cut, false);
    auto res = svc.run(net, v);
    std::printf("  switch %u: %s\n", v,
                res.critical.value_or(false) ? "CRITICAL — postpone upgrade"
                                             : "safe to upgrade");
  }

  // Cross-check against the controller-side ground truth.
  std::printf("\ncross-check vs articulation points (Tarjan): ");
  bool all_ok = true;
  const auto truth = graph::articulation_points(topo);
  for (graph::NodeId v = 0; v < topo.node_count(); ++v) {
    sim::Network net(topo);
    svc.install(net);
    auto res = svc.run(net, v);
    all_ok = all_ok && res.critical.has_value() && *res.critical == truth[v];
  }
  std::printf("%s\n", all_ok ? "all verdicts agree" : "MISMATCH");
  return 0;
}
